"""Embedded database facade.

``Database`` is the single entry point BLEND uses for its in-database
execution: it owns a catalog of stored tables (row- or column-oriented,
selected per database), parses and plans SQL, and dispatches to the
matching executor. The two backends mirror the paper's deployment on
PostgreSQL (row store) and a commercial column store.

Example
-------
>>> db = Database(backend="column")
>>> db.create_table("t", [("a", "integer"), ("b", "text")])
>>> db.insert("t", [(1, "x"), (2, "y"), (2, "z")])
3
>>> db.execute("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a").rows
[(1, 1), (2, 2)]
"""

from __future__ import annotations

import functools
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import EngineError
from .sql import ast
from .sql.executor_column import ColumnExecutor
from .sql.executor_row import QueryStats, RowExecutor
from .sql.lexer import tokenize
from .sql.parser import parse
from .sql.planner import (
    PlanNode,
    TableResolver,
    param_shapes,
    plan_select,
    rebind_plan,
)
from .storage.catalog import Catalog, ColumnDef, TableSchema
from .storage.column_store import ColumnTable, decode_if_coded
from .storage.row_store import RowTable
from .types import SqlType

BACKENDS = ("row", "column")


@dataclass
class ResultSet:
    """Query result: ordered column names plus row tuples."""

    columns: list[str]
    rows: list[tuple]
    stats: QueryStats = field(default_factory=QueryStats)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise EngineError(
                f"scalar() requires a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, index: int = 0) -> list[Any]:
        """All values of one output column."""
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


@dataclass
class ColumnarResult:
    """Query result as typed ``(data, null_mask)`` column arrays.

    The array-native sibling of :class:`ResultSet`, produced by
    :meth:`Database.execute_columnar` for consumers that keep computing in
    NumPy (the vectorised MC seeker phases)."""

    columns: list[str]
    arrays: list[tuple[np.ndarray, np.ndarray]]
    stats: QueryStats = field(default_factory=QueryStats)

    def __len__(self) -> int:
        return int(len(self.arrays[0][0])) if self.arrays else 0

    def column(self, index: int = 0) -> np.ndarray:
        """The data array of one output column."""
        return self.arrays[index][0]


def _rows_to_arrays(rows: list[tuple], width: int) -> list[tuple[np.ndarray, np.ndarray]]:
    """Transpose row tuples into typed column arrays (row-backend
    fallback for :meth:`Database.execute_columnar`). Integer columns that
    fit int64 become int64 (the seeker id/super-key shape); floats become
    float64; anything mixed stays object."""
    arrays: list[tuple[np.ndarray, np.ndarray]] = []
    for position in range(width):
        values = [row[position] for row in rows]
        null = np.fromiter((v is None for v in values), dtype=bool, count=len(values))
        data: Optional[np.ndarray] = None
        present = [v for v in values if v is not None]
        if present and all(
            isinstance(v, int) and not isinstance(v, bool) for v in present
        ):
            try:
                data = np.array([0 if v is None else v for v in values], dtype=np.int64)
            except OverflowError:  # 128-bit super keys stay Python ints
                data = None
        elif present and all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in present
        ):
            data = np.array([0.0 if v is None else float(v) for v in values], dtype=np.float64)
        if data is None:
            data = np.empty(len(values), dtype=object)
            data[:] = values
        arrays.append((data, null))
    return arrays


@functools.lru_cache(maxsize=512)
def _parse_cached(sql: str) -> ast.Select:
    """AST cache -- seeker SQL templates repeat across executions with only
    parameters changing, so parsing is amortised away."""
    return parse(sql)


@functools.lru_cache(maxsize=2048)
def _normalize_sql_key(sql: str) -> str:
    """Whitespace-insensitive cache-key form of a SQL statement.

    Built from the *real* lexer's token stream, so the key agrees with
    the parser on every lexical rule -- ``--`` comments, quoted
    identifiers, ``''`` escapes -- by construction: trivially reformatted
    statements (newlines, indentation, comments) map to one plan-cache
    entry, while any two statements with different token streams keep
    distinct keys. Statements the lexer rejects key on their raw text
    (the subsequent parse raises the real error). The raw text is still
    what gets parsed -- this shapes only the key.
    """
    try:
        tokens = tokenize(sql)
    except EngineError:
        # Distinct prefix: raw text (whatever it contains) can never
        # collide with a normalised key.
        return "raw\x00" + sql
    # Length-prefixed records are prefix-decodable, so no token value --
    # not even one containing a separator-looking byte inside a string
    # literal -- can forge a token boundary and collide two statements.
    return "tok\x00" + "".join(
        f"{token.kind}:{len(token.value)}:{token.value}" for token in tokens
    )


@dataclass
class _PlanEntry:
    """One plan-cache slot.

    ``lock`` serialises *use* of the plan, not just cache bookkeeping:
    :func:`rebind_plan` mutates the cached plan tree in place
    (predicate values, LIMIT counts), so two threads rebinding-and-
    executing one cached plan concurrently would race each other's
    parameters. Every executor run holds the entry lock from rebind
    through execution; distinct statements use distinct entries and run
    fully in parallel.
    """

    plan: PlanNode
    referenced: frozenset[str]
    lock: threading.Lock = field(default_factory=threading.Lock)


class Database:
    """An embedded single-process database with pluggable storage layout.

    ``execute`` keeps an LRU **plan cache** keyed on ``(sql, backend,
    parameter shapes)``: repeated statements (the four seeker templates,
    notably) are planned once and merely *rebound* to fresh parameter
    values on later calls. Hit counters are exposed via
    :meth:`plan_cache_stats` and per-query on ``ResultSet.stats``.

    Mutations bump a monotonically increasing **data epoch** (surfaced in
    :meth:`cache_stats`); storage compaction additionally drops cached
    plans that reference the compacted table, since their planning-time
    assumptions (cardinalities, clustering) no longer describe the
    storage they would scan.

    **Concurrency:** read-only execution (``execute`` /
    ``execute_columnar``) is thread-safe -- cache bookkeeping and
    counters sit behind one lock, and each cached plan carries its own
    lock held from parameter rebinding through executor run (cached plan
    trees are rebound *in place*, so using one concurrently would race).
    Mutating calls (inserts, deletes, DDL) are not synchronised against
    concurrent readers; the serving tier swaps whole databases instead
    of mutating a live one. Call :meth:`warm` before sharing a database
    across reader threads so lazily-built storage state (seal merges,
    index postings, text-probe dicts) is materialised up front.
    """

    PLAN_CACHE_SIZE = 256

    def __init__(self, backend: str = "column") -> None:
        if backend not in BACKENDS:
            raise EngineError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        self.backend = backend
        self._catalog = Catalog()
        self.last_stats = QueryStats()
        # Guards the cache dict, hit/miss counters, and the data epoch;
        # never held while planning or executing (only per-entry locks
        # are, so distinct statements execute concurrently).
        self._cache_lock = threading.Lock()
        self._plan_cache: OrderedDict[tuple, _PlanEntry] = OrderedDict()
        self._plan_cache_hits = 0
        self._plan_cache_misses = 0
        self._data_epoch = 0

    # -- schema ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, Union[str, SqlType]]],
    ) -> None:
        """Create a table. *columns* is a list of (name, type) pairs where
        type is a :class:`SqlType` or a SQL type name string."""
        defs = [
            ColumnDef(col_name, t if isinstance(t, SqlType) else SqlType.from_name(t))
            for col_name, t in columns
        ]
        schema = TableSchema(name, defs)
        if self.backend == "row":
            self._catalog.register(RowTable(schema))
        else:
            self._catalog.register(ColumnTable(schema))
        self._data_epoch += 1
        self._invalidate_plans()

    def drop_table(self, name: str) -> None:
        self._catalog.drop(name)
        self._data_epoch += 1
        self._invalidate_plans()

    def has_table(self, name: str) -> bool:
        return self._catalog.exists(name)

    def table_names(self) -> list[str]:
        return self._catalog.table_names()

    def table(self, name: str):
        """The underlying storage object (RowTable / ColumnTable)."""
        return self._catalog.get(name)

    def create_index(self, table_name: str, column_name: str) -> None:
        """Create a hash index (idempotent), e.g. BLEND's two in-database
        indexes on ``AllTables(CellValue)`` and ``AllTables(TableId)``."""
        self._catalog.get(table_name).create_index(column_name)

    def attach_table(self, storage) -> None:
        """Register an already-built storage object (RowTable /
        ColumnTable) under its schema name -- the snapshot load path,
        where tables arrive fully sealed (typically over memory-mapped
        payloads) instead of being created empty and re-ingested."""
        expected = RowTable if self.backend == "row" else ColumnTable
        if not isinstance(storage, expected):
            raise EngineError(
                f"cannot attach a {type(storage).__name__} to a "
                f"{self.backend!r}-backend database"
            )
        self._catalog.register(storage)
        self._data_epoch += 1
        self._invalidate_plans()

    # -- data ---------------------------------------------------------------------

    def insert(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert; returns the number of rows added."""
        inserted = self._catalog.get(table_name).insert_rows(rows)
        if inserted:
            self._data_epoch += 1
        return inserted

    def insert_columns(self, table_name: str, columns: Sequence[tuple]) -> int:
        """Typed bulk-append: *columns* is one ``(data, null_mask)`` pair
        per schema column (``null_mask`` may be ``None``). Bypasses the
        per-cell coercion of :meth:`insert` -- the vectorised ``AllTables``
        ingest path, and the append side of the sharded build's merge
        (one call per shard part; parts sharing one ``DictEncodedText``
        dictionary object concatenate without a union at seal time).
        Returns the number of rows appended."""
        inserted = self._catalog.get(table_name).insert_columns(columns)
        if inserted:
            self._data_epoch += 1
        return inserted

    def delete_rows(self, table_name: str, column_name: str, values: Iterable[Any]) -> int:
        """Delete every row whose *column_name* equals any of *values*
        (tombstoned in storage; compaction triggers automatically past the
        table's dead-row threshold). The ``AllTables`` maintenance
        primitive behind ``deindex_table``. Returns rows deleted."""
        table = self._catalog.get(table_name)
        before = getattr(table, "compactions", 0)
        deleted = table.delete_rows(column_name, values)
        if deleted:
            self._data_epoch += 1
        if getattr(table, "compactions", 0) != before:
            self._invalidate_plans_for(table_name)
        return deleted

    def compact(self, table_name: str) -> None:
        """Force physical compaction of one table (tombstones dropped,
        text dictionaries re-encoded, rows re-clustered when the table
        declares ``cluster_keys``); cached plans referencing the table are
        invalidated."""
        self._catalog.get(table_name).compact()
        self._data_epoch += 1
        self._invalidate_plans_for(table_name)

    def set_cluster_keys(self, table_name: str, columns: Sequence[str]) -> None:
        """Declare the canonical row order compaction restores (e.g.
        ``AllTables(TableId, RowId, ColumnId)`` -- the emission order of a
        from-scratch offline build)."""
        table = self._catalog.get(table_name)
        for column in columns:
            table.schema.position_of(column)  # validates existence
        table.cluster_keys = tuple(columns)

    def num_rows(self, table_name: str) -> int:
        return self._catalog.get(table_name).num_rows

    def storage_bytes(self, table_name: Optional[str] = None) -> int:
        """Approximate resident bytes of one table or the whole database."""
        if table_name is not None:
            return self._catalog.get(table_name).storage_bytes()
        return sum(
            self._catalog.get(name).storage_bytes() for name in self._catalog.table_names()
        )

    # -- querying ------------------------------------------------------------------

    def plan(self, sql: str, params: Optional[Mapping[str, Any]] = None) -> PlanNode:
        """Parse and plan *sql* without executing (used by tests and the
        optimizer's cost introspection)."""
        select = _parse_cached(sql)
        resolver = TableResolver(lambda name: self._column_names(name))
        return plan_select(select, resolver, params)

    def execute(self, sql: str, params: Optional[Mapping[str, Any]] = None) -> ResultSet:
        """Run a SELECT and return its result set.

        ``params`` binds ``:name`` placeholders; sequence-valued parameters
        may appear in ``IN`` lists (this is how BLEND passes query columns
        and rewritten intermediate results). Plans come from the LRU plan
        cache when the (sql, backend, parameter-shape) key has been seen
        before; only parameter values are rebound.
        """
        entry, cache_hit = self._cached_plan(sql, params)
        stats = QueryStats()
        stats.plan_cache_hit = cache_hit
        plan = entry.plan
        with entry.lock:
            # Rebind unconditionally: on a miss the plan was bound at
            # planning time, but a concurrent hit on the same (now
            # cached) entry may have rebound it to its own parameters
            # before this thread reached the lock.
            rebind_plan(plan, params)
            if self.backend == "row":
                executor = RowExecutor(self._catalog, params, stats)
                rows = executor.execute(plan)
            else:
                executor = ColumnExecutor(self._catalog, params, stats)
                batch = executor.execute(plan)
                rows = batch.to_rows()
            names = plan.schema.names()
        self.last_stats = stats
        return ResultSet(columns=names, rows=rows, stats=stats)

    def execute_columnar(
        self,
        sql: str,
        params: Optional[Mapping[str, Any]] = None,
        decode_text: bool = True,
    ) -> "ColumnarResult":
        """Run a SELECT and return its result as typed column arrays.

        The vectorised consumer path (the MC seeker's candidate fetch,
        notably): on the column backend the executor's batch is handed
        over directly -- no Python tuple materialisation at all; on the
        row backend the row tuples are transposed into typed arrays once.
        Each column comes back as ``(data, null_mask)`` with ``int64`` /
        ``float64`` dtype where all values fit, object otherwise.

        ``decode_text=False`` skips the dictionary gather on the column
        backend: text columns that reach the projection still
        dictionary-coded come back as :class:`DictCodes` (integer codes
        plus a ``.dictionary`` attribute), letting consumers that
        re-encode values anyway (the cross-query batch kernels) translate
        per distinct code instead of per row. Purely an optimisation
        hint: columns the executor already materialised, and everything
        on the row backend, come back as plain arrays regardless.
        """
        entry, cache_hit = self._cached_plan(sql, params)
        stats = QueryStats()
        stats.plan_cache_hit = cache_hit
        plan = entry.plan
        with entry.lock:
            rebind_plan(plan, params)
            names = plan.schema.names()
            if self.backend == "row":
                executor = RowExecutor(self._catalog, params, stats)
                rows = executor.execute(plan)
                self.last_stats = stats
                return ColumnarResult(names, _rows_to_arrays(rows, len(names)), stats)
            executor = ColumnExecutor(self._catalog, params, stats)
            batch = executor.execute(plan)
            arrays: list[tuple[np.ndarray, np.ndarray]] = []
            for position in range(len(names)):
                data, null = batch.column(position)
                if decode_text:
                    data = decode_if_coded(data)
                arrays.append((data, null))
        self.last_stats = stats
        return ColumnarResult(names, arrays, stats)

    def plan_cache_stats(self) -> dict[str, int]:
        """Plan-cache effectiveness counters (hits / misses / entries)."""
        with self._cache_lock:
            return {
                "hits": self._plan_cache_hits,
                "misses": self._plan_cache_misses,
                "size": len(self._plan_cache),
            }

    def cache_stats(self) -> dict[str, int]:
        """Plan-cache counters plus the database's data epoch -- the
        monotonically increasing mutation counter consumers use to detect
        that cached derived state (result sets, contexts) predates a
        mutation."""
        stats = self.plan_cache_stats()
        stats["data_epoch"] = self._data_epoch
        return stats

    def warm(self) -> None:
        """Materialise every table's lazily-built read-path state (seal
        merges, live-position caches, declared index postings, text-probe
        dictionaries) so subsequent read-only queries can run from
        concurrent threads without ever racing a lazy build. Idempotent;
        the serving tier warms a deployment before admitting traffic."""
        for name in self._catalog.table_names():
            self._catalog.get(name).warm()

    @property
    def data_epoch(self) -> int:
        return self._data_epoch

    # -- internals --------------------------------------------------------------------

    def _plan_with_tables(
        self, sql: str, params: Optional[Mapping[str, Any]]
    ) -> tuple[PlanNode, frozenset[str]]:
        """Plan *sql*, recording which stored tables the plan references
        (for compaction-targeted cache invalidation)."""
        select = _parse_cached(sql)
        referenced: set[str] = set()

        def column_names(table_name: str) -> list[str]:
            referenced.add(table_name.lower())
            return self._column_names(table_name)

        plan = plan_select(select, TableResolver(column_names), params)
        return plan, frozenset(referenced)

    def _cached_plan(
        self, sql: str, params: Optional[Mapping[str, Any]]
    ) -> tuple[_PlanEntry, bool]:
        """The cache entry for (sql, backend, param shapes) -- cached, or
        freshly planned and inserted.

        Planning runs *outside* the cache lock (it is the slow part);
        when two threads race to plan the same statement, the loser
        adopts the winner's entry and its duplicate plan is dropped, so
        one key never maps to two live cache slots.
        """
        key = (_normalize_sql_key(sql), self.backend, param_shapes(params))
        with self._cache_lock:
            entry = self._plan_cache.get(key)
            if entry is not None:
                self._plan_cache.move_to_end(key)
                self._plan_cache_hits += 1
                return entry, True
        plan, referenced = self._plan_with_tables(sql, params)
        with self._cache_lock:
            existing = self._plan_cache.get(key)
            if existing is not None:
                # Lost the planning race: the work was redundant, not
                # wrong. Count the miss (planning did happen) and share
                # the winner's entry so its lock serialises both users.
                self._plan_cache_misses += 1
                self._plan_cache.move_to_end(key)
                return existing, False
            entry = _PlanEntry(plan, referenced)
            self._plan_cache_misses += 1
            self._plan_cache[key] = entry
            if len(self._plan_cache) > self.PLAN_CACHE_SIZE:
                # Evicted entries may still be executing (their holders
                # keep object references); they simply drop out of reuse.
                self._plan_cache.popitem(last=False)
            return entry, False

    def _invalidate_plans(self) -> None:
        """Schema changed: cached plans may embed stale column layouts."""
        with self._cache_lock:
            self._plan_cache.clear()

    def _invalidate_plans_for(self, table_name: str) -> None:
        """Drop cached plans referencing one (compacted) table."""
        key = table_name.lower()
        with self._cache_lock:
            stale = [
                cache_key
                for cache_key, entry in self._plan_cache.items()
                if key in entry.referenced
            ]
            for cache_key in stale:
                del self._plan_cache[cache_key]

    def _column_names(self, table_name: str) -> list[str]:
        if table_name == "__dual__":
            return []
        return self._catalog.get(table_name).schema.column_names()
