"""Embedded database facade.

``Database`` is the single entry point BLEND uses for its in-database
execution: it owns a catalog of stored tables (row- or column-oriented,
selected per database), parses and plans SQL, and dispatches to the
matching executor. The two backends mirror the paper's deployment on
PostgreSQL (row store) and a commercial column store.

Example
-------
>>> db = Database(backend="column")
>>> db.create_table("t", [("a", "integer"), ("b", "text")])
>>> db.insert("t", [(1, "x"), (2, "y"), (2, "z")])
3
>>> db.execute("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a").rows
[(1, 1), (2, 2)]
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

from ..errors import CatalogError, EngineError
from .sql import ast
from .sql.executor_column import Batch, ColumnExecutor
from .sql.executor_row import QueryStats, RowExecutor
from .sql.parser import parse
from .sql.planner import PlanNode, TableResolver, plan_select
from .storage.catalog import Catalog, ColumnDef, TableSchema
from .storage.column_store import ColumnTable
from .storage.row_store import RowTable
from .types import SqlType

BACKENDS = ("row", "column")


@dataclass
class ResultSet:
    """Query result: ordered column names plus row tuples."""

    columns: list[str]
    rows: list[tuple]
    stats: QueryStats = field(default_factory=QueryStats)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise EngineError(
                f"scalar() requires a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, index: int = 0) -> list[Any]:
        """All values of one output column."""
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


@functools.lru_cache(maxsize=512)
def _parse_cached(sql: str) -> ast.Select:
    """AST cache -- seeker SQL templates repeat across executions with only
    parameters changing, so parsing is amortised away."""
    return parse(sql)


class Database:
    """An embedded single-process database with pluggable storage layout."""

    def __init__(self, backend: str = "column") -> None:
        if backend not in BACKENDS:
            raise EngineError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        self.backend = backend
        self._catalog = Catalog()
        self.last_stats = QueryStats()

    # -- schema ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, Union[str, SqlType]]],
    ) -> None:
        """Create a table. *columns* is a list of (name, type) pairs where
        type is a :class:`SqlType` or a SQL type name string."""
        defs = [
            ColumnDef(col_name, t if isinstance(t, SqlType) else SqlType.from_name(t))
            for col_name, t in columns
        ]
        schema = TableSchema(name, defs)
        if self.backend == "row":
            self._catalog.register(RowTable(schema))
        else:
            self._catalog.register(ColumnTable(schema))

    def drop_table(self, name: str) -> None:
        self._catalog.drop(name)

    def has_table(self, name: str) -> bool:
        return self._catalog.exists(name)

    def table_names(self) -> list[str]:
        return self._catalog.table_names()

    def table(self, name: str):
        """The underlying storage object (RowTable / ColumnTable)."""
        return self._catalog.get(name)

    def create_index(self, table_name: str, column_name: str) -> None:
        """Create a hash index (idempotent), e.g. BLEND's two in-database
        indexes on ``AllTables(CellValue)`` and ``AllTables(TableId)``."""
        self._catalog.get(table_name).create_index(column_name)

    # -- data ---------------------------------------------------------------------

    def insert(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert; returns the number of rows added."""
        return self._catalog.get(table_name).insert_rows(rows)

    def num_rows(self, table_name: str) -> int:
        return self._catalog.get(table_name).num_rows

    def storage_bytes(self, table_name: Optional[str] = None) -> int:
        """Approximate resident bytes of one table or the whole database."""
        if table_name is not None:
            return self._catalog.get(table_name).storage_bytes()
        return sum(
            self._catalog.get(name).storage_bytes() for name in self._catalog.table_names()
        )

    # -- querying ------------------------------------------------------------------

    def plan(self, sql: str, params: Optional[Mapping[str, Any]] = None) -> PlanNode:
        """Parse and plan *sql* without executing (used by tests and the
        optimizer's cost introspection)."""
        select = _parse_cached(sql)
        resolver = TableResolver(lambda name: self._column_names(name))
        return plan_select(select, resolver, params)

    def execute(self, sql: str, params: Optional[Mapping[str, Any]] = None) -> ResultSet:
        """Run a SELECT and return its result set.

        ``params`` binds ``:name`` placeholders; sequence-valued parameters
        may appear in ``IN`` lists (this is how BLEND passes query columns
        and rewritten intermediate results).
        """
        plan = self.plan(sql, params)
        stats = QueryStats()
        if self.backend == "row":
            executor = RowExecutor(self._catalog, params, stats)
            rows = executor.execute(plan)
        else:
            executor = ColumnExecutor(self._catalog, params, stats)
            batch = executor.execute(plan)
            rows = batch.to_rows()
        self.last_stats = stats
        return ResultSet(columns=plan.schema.names(), rows=rows, stats=stats)

    # -- internals --------------------------------------------------------------------

    def _column_names(self, table_name: str) -> list[str]:
        if table_name == "__dual__":
            return []
        return self._catalog.get(table_name).schema.column_names()
