"""Embedded relational engine: the database substrate BLEND runs on.

Provides a row-store backend (PostgreSQL's role in the paper) and a
NumPy-vectorised column-store backend (the commercial column store's
role), both executing the same SQL subset that BLEND's seekers emit.

Two hot-path facilities back the offline/online split of a discovery
system:

* **Typed bulk ingest** -- ``Database.insert_columns`` appends
  ``(data, null_mask)`` column arrays directly to either backend,
  bypassing per-cell type coercion; the column store dictionary-encodes
  text via ``np.unique`` (or accepts pre-encoded
  ``column_store.DictEncodedText``) and seals new batches incrementally
  instead of rebuilding the table.
* **Plan cache** -- ``Database.execute`` keeps an LRU of physical plans
  keyed on ``(sql, backend, parameter shapes)``; repeated statements
  (the four seeker templates) plan once and are *rebound* to fresh
  parameter values per call. Hit counters: ``Database.plan_cache_stats``
  and ``ResultSet.stats.plan_cache_hit``.
"""

from .database import Database, ResultSet
from .types import SqlType

__all__ = ["Database", "ResultSet", "SqlType"]
