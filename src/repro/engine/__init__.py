"""Embedded relational engine: the database substrate BLEND runs on.

Provides a row-store backend (PostgreSQL's role in the paper) and a
NumPy-vectorised column-store backend (the commercial column store's
role), both executing the same SQL subset that BLEND's seekers emit.
"""

from .database import Database, ResultSet
from .types import SqlType

__all__ = ["Database", "ResultSet", "SqlType"]
