"""Vectorised expression compiler for the columnar executor.

Expressions compile to closures over a *column source* -- anything exposing
``column(position) -> (data, null_mask)`` plus a ``length``. Results use the
same representation: a NumPy data array (float64/int64/bool/object) paired
with a boolean NULL mask implementing three-valued logic.

Semantics intentionally mirror :mod:`.expressions` (the row-wise reference
implementation); the test suite cross-checks the two on random inputs.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Protocol

import numpy as np

from ...errors import PlanningError
from ..storage.column_store import (
    isin_sorted,
    normalize_numeric_probes,
    numeric_probe_array,
)
from . import ast
from .expressions import bind_parameter
from .schema import Schema

VectorResult = tuple[np.ndarray, np.ndarray]


class ColumnSource(Protocol):
    """Abstract access to input columns by schema position."""

    @property
    def length(self) -> int: ...

    def column(self, position: int) -> VectorResult: ...


VectorEvaluator = Callable[[ColumnSource], VectorResult]


def compile_vector_expression(
    node: ast.Node,
    schema: Schema,
    params: Optional[Mapping[str, Any]] = None,
) -> VectorEvaluator:
    """Compile *node* into a ``source -> (data, null)`` closure."""
    if isinstance(node, ast.Literal):
        return _compile_literal(node.value)
    if isinstance(node, ast.Parameter):
        value = bind_parameter(params, node.name)
        if isinstance(value, (list, tuple, set, frozenset)):
            raise PlanningError(
                f"parameter :{node.name} binds a sequence and may only be used in an IN list"
            )
        return _compile_literal(value)
    if isinstance(node, ast.ColumnRef):
        position = schema.resolve(node.name, node.table)
        return lambda source: source.column(position)
    if isinstance(node, ast.BinaryOp):
        return _compile_binary(node, schema, params)
    if isinstance(node, ast.UnaryOp):
        operand = compile_vector_expression(node.operand, schema, params)
        if node.op == "NOT":
            def negate_logical(source: ColumnSource) -> VectorResult:
                data, null = operand(source)
                return ~_as_bool(data), null

            return negate_logical
        if node.op == "-":
            def negate_numeric(source: ColumnSource) -> VectorResult:
                data, null = operand(source)
                return -_as_numeric(data), null

            return negate_numeric
        raise PlanningError(f"unknown unary operator: {node.op}")
    if isinstance(node, ast.InList):
        return _compile_in_list(node, schema, params)
    if isinstance(node, ast.IsNull):
        operand = compile_vector_expression(node.operand, schema, params)
        negated = node.negated

        def is_null(source: ColumnSource) -> VectorResult:
            _, null = operand(source)
            data = ~null if negated else null.copy()
            return data, np.zeros(len(null), dtype=bool)

        return is_null
    if isinstance(node, ast.Cast):
        return _compile_cast(node, schema, params)
    if isinstance(node, ast.FunctionCall):
        return _compile_function(node, schema, params)
    if isinstance(node, ast.Aggregate):
        raise PlanningError(f"aggregate {node.display()} used outside GROUP BY context")
    raise PlanningError(f"cannot vectorise expression node: {type(node).__name__}")


# --------------------------------------------------------------------------
# Node compilers
# --------------------------------------------------------------------------


def _compile_literal(value: Any) -> VectorEvaluator:
    def broadcast(source: ColumnSource) -> VectorResult:
        length = source.length
        if value is None:
            return np.zeros(length, dtype=np.int64), np.ones(length, dtype=bool)
        null = np.zeros(length, dtype=bool)
        if isinstance(value, bool):
            return np.full(length, value, dtype=bool), null
        if isinstance(value, int):
            return np.full(length, value, dtype=np.int64), null
        if isinstance(value, float):
            return np.full(length, value, dtype=np.float64), null
        data = np.empty(length, dtype=object)
        data[:] = value
        return data, null

    return broadcast


def _compile_binary(
    node: ast.BinaryOp, schema: Schema, params: Optional[Mapping[str, Any]]
) -> VectorEvaluator:
    left = compile_vector_expression(node.left, schema, params)
    right = compile_vector_expression(node.right, schema, params)
    op = node.op
    if op == "AND":
        def logical_and(source: ColumnSource) -> VectorResult:
            l_data, l_null = left(source)
            r_data, r_null = right(source)
            l_bool, r_bool = _as_bool(l_data), _as_bool(r_data)
            is_false = (~l_null & ~l_bool) | (~r_null & ~r_bool)
            null = ~is_false & (l_null | r_null)
            return ~is_false & ~null, null

        return logical_and
    if op == "OR":
        def logical_or(source: ColumnSource) -> VectorResult:
            l_data, l_null = left(source)
            r_data, r_null = right(source)
            l_bool, r_bool = _as_bool(l_data), _as_bool(r_data)
            is_true = (~l_null & l_bool) | (~r_null & r_bool)
            null = ~is_true & (l_null | r_null)
            return is_true, null

        return logical_or
    if op in ("=", "<>"):
        negate = op == "<>"

        def equals(source: ColumnSource) -> VectorResult:
            l_data, l_null = left(source)
            r_data, r_null = right(source)
            data = _vector_equals(l_data, r_data)
            if negate:
                data = ~data
            return data, l_null | r_null

        return equals
    if op in ("<", "<=", ">", ">="):
        def compare(source: ColumnSource, _op: str = op) -> VectorResult:
            l_data, l_null = left(source)
            r_data, r_null = right(source)
            data = _vector_compare(l_data, r_data, _op)
            return data, l_null | r_null

        return compare
    if op in ("+", "-", "*", "/", "%"):
        def arithmetic(source: ColumnSource, _op: str = op) -> VectorResult:
            l_data, l_null = left(source)
            r_data, r_null = right(source)
            lhs = _as_numeric(l_data)
            rhs = _as_numeric(r_data)
            null = l_null | r_null
            if _op == "+":
                return lhs + rhs, null
            if _op == "-":
                return lhs - rhs, null
            if _op == "*":
                return lhs * rhs, null
            # Division and modulo: zero divisors yield NULL (see row
            # executor rationale -- keeps ranking queries total).
            zero = rhs == 0
            safe_rhs = np.where(zero, 1, rhs)
            if _op == "/":
                result = lhs / safe_rhs
            else:
                result = np.mod(lhs, safe_rhs)
            return result, null | zero

        return arithmetic
    raise PlanningError(f"unknown binary operator: {op}")


def _compile_in_list(
    node: ast.InList, schema: Schema, params: Optional[Mapping[str, Any]]
) -> VectorEvaluator:
    operand = compile_vector_expression(node.operand, schema, params)
    values: list[Any] = []
    contains_null = False
    for item in node.items:
        if isinstance(item, ast.Literal):
            if item.value is None:
                contains_null = True
            else:
                values.append(item.value)
        elif isinstance(item, ast.Parameter):
            bound = bind_parameter(params, item.name)
            if isinstance(bound, (list, tuple, set, frozenset)):
                for element in bound:
                    if element is None:
                        contains_null = True
                    else:
                        values.append(element)
            elif bound is None:
                contains_null = True
            else:
                values.append(bound)
        else:
            raise PlanningError("IN lists may only contain literals and parameters")
    negated = node.negated
    text_values = [v for v in values if isinstance(v, str)]
    # Shared probe normaliser (bools participate as 0/1 -- the engine's
    # bool/int duality) so the residual path can never drift from the
    # sargable scan paths.
    numeric_set = normalize_numeric_probes(values)
    text_set = frozenset(text_values)
    # Exact probe array for integer-dtype operands: float64 membership
    # would alias int64 values above 2^53 (e.g. SuperKeys).
    integer_array = numeric_probe_array(numeric_set, np.dtype(np.int64)) if numeric_set else None
    float_array = numeric_probe_array(numeric_set, np.dtype(np.float64)) if numeric_set else None

    def membership(source: ColumnSource) -> VectorResult:
        data, null = operand(source)
        if data.dtype == object:
            found = np.fromiter(
                (value in text_set for value in data), count=len(data), dtype=bool
            )
        elif data.dtype.kind in "iu":
            found = (
                isin_sorted(data, integer_array)
                if integer_array is not None
                else np.zeros(len(data), dtype=bool)
            )
        else:
            numeric = _as_numeric(data)
            found = (
                isin_sorted(numeric, float_array)
                if float_array is not None
                else np.zeros(len(data), dtype=bool)
            )
        if negated:
            result = ~found
        else:
            result = found
        result_null = null.copy()
        if contains_null:
            result_null |= ~found
        return result, result_null

    return membership


def _compile_cast(
    node: ast.Cast, schema: Schema, params: Optional[Mapping[str, Any]]
) -> VectorEvaluator:
    operand = compile_vector_expression(node.operand, schema, params)
    target = node.type_name
    if target in ("int", "integer", "bigint"):
        def cast_int(source: ColumnSource) -> VectorResult:
            data, null = operand(source)
            if data.dtype == object:
                out = np.zeros(len(data), dtype=np.int64)
                for i, value in enumerate(data):
                    if not null[i] and value is not None:
                        out[i] = int(float(value))
                return out, null
            return _as_numeric(data).astype(np.int64), null

        return cast_int
    if target in ("float", "real", "double", "numeric"):
        def cast_float(source: ColumnSource) -> VectorResult:
            data, null = operand(source)
            if data.dtype == object:
                out = np.zeros(len(data), dtype=np.float64)
                for i, value in enumerate(data):
                    if not null[i] and value is not None:
                        out[i] = float(value)
                return out, null
            return _as_numeric(data).astype(np.float64), null

        return cast_float
    if target in ("text", "varchar", "nvarchar"):
        def cast_text(source: ColumnSource) -> VectorResult:
            data, null = operand(source)
            out = np.empty(len(data), dtype=object)
            for i, value in enumerate(data):
                out[i] = None if null[i] else str(value)
            return out, null

        return cast_text
    raise PlanningError(f"unsupported cast target: {target}")


def _compile_function(
    node: ast.FunctionCall, schema: Schema, params: Optional[Mapping[str, Any]]
) -> VectorEvaluator:
    args = [compile_vector_expression(arg, schema, params) for arg in node.args]
    name = node.name.upper()
    if name == "ABS" and len(args) == 1:
        arg = args[0]

        def absolute(source: ColumnSource) -> VectorResult:
            data, null = arg(source)
            return np.abs(_as_numeric(data)), null

        return absolute
    if name == "SQRT" and len(args) == 1:
        arg = args[0]

        def sqrt(source: ColumnSource) -> VectorResult:
            data, null = arg(source)
            numeric = _as_numeric(data).astype(np.float64)
            negative = numeric < 0
            out = np.sqrt(np.where(negative, 0.0, numeric))
            return out, null | negative

        return sqrt
    if name == "COALESCE" and args:
        def coalesce(source: ColumnSource) -> VectorResult:
            data, null = args[0](source)
            data = data.copy()
            null = null.copy()
            for arg in args[1:]:
                if not null.any():
                    break
                next_data, next_null = arg(source)
                fill = null & ~next_null
                if data.dtype != next_data.dtype:
                    data = data.astype(object)
                    next_data = next_data.astype(object)
                data[fill] = next_data[fill]
                null &= ~fill
            return data, null

        return coalesce
    # Generic element-wise fallback (LOWER/UPPER/LENGTH/LIKE): route through
    # the row-wise compiler semantics one value at a time. These only appear
    # in cold paths (no seeker query uses them on the hot loop).
    from .expressions import compile_expression

    def fallback(source: ColumnSource) -> VectorResult:
        materialised = [arg(source) for arg in args]
        length = source.length
        fake_schema = Schema([(None, f"c{i}") for i in range(len(args))])
        row_eval = compile_expression(
            ast.FunctionCall(
                name=name,
                args=tuple(ast.ColumnRef(name=f"c{i}") for i in range(len(args))),
            ),
            fake_schema,
            params,
        )
        out = np.empty(length, dtype=object)
        null = np.zeros(length, dtype=bool)
        for i in range(length):
            row = tuple(
                None if arg_null[i] else _item(arg_data[i])
                for arg_data, arg_null in materialised
            )
            value = row_eval(row)
            if value is None:
                null[i] = True
            out[i] = value
        return out, null

    return fallback


# --------------------------------------------------------------------------
# dtype helpers
# --------------------------------------------------------------------------


def _as_bool(data: np.ndarray) -> np.ndarray:
    if data.dtype == bool:
        return data
    if data.dtype == object:
        return np.fromiter((bool(v) for v in data), count=len(data), dtype=bool)
    return data != 0


def _as_numeric(data: np.ndarray) -> np.ndarray:
    if data.dtype == bool:
        return data.astype(np.int64)
    if data.dtype == object:
        out = np.zeros(len(data), dtype=np.float64)
        for i, value in enumerate(data):
            if value is not None and not isinstance(value, str):
                out[i] = float(value)
        return out
    return data


def _vector_equals(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if left.dtype == object or right.dtype == object:
        result = left == right
        if isinstance(result, np.ndarray) and result.dtype == bool:
            return result
        return np.fromiter(
            (l == r for l, r in zip(left, right)), count=len(left), dtype=bool
        )
    return _as_numeric(left) == _as_numeric(right)


def _vector_compare(left: np.ndarray, right: np.ndarray, op: str) -> np.ndarray:
    if left.dtype == object or right.dtype == object:
        # Element-wise Python comparison; NULL positions hold None but are
        # masked out by the caller, so substitute a self-comparison to
        # avoid TypeErrors.
        out = np.zeros(len(left), dtype=bool)
        for i, (l, r) in enumerate(zip(left, right)):
            if l is None or r is None:
                continue
            if op == "<":
                out[i] = l < r
            elif op == "<=":
                out[i] = l <= r
            elif op == ">":
                out[i] = l > r
            else:
                out[i] = l >= r
        return out
    lhs, rhs = _as_numeric(left), _as_numeric(right)
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    return lhs >= rhs


def _item(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value
