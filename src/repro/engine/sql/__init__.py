"""SQL front end: lexer, parser, planner, and the two executors."""

from .parser import parse

__all__ = ["parse"]
