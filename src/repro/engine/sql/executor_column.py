"""Vectorised executor over the column store.

Interprets the same physical plans as :mod:`.executor_row`, but operates on
whole columns at a time with NumPy kernels: dictionary-code membership
scans, factorise-and-bincount aggregation, and sort-based vectorised hash
joins. This executor plays the commercial column store's role in the
paper's experiments and is what gives BLEND (Column) its order-of-magnitude
advantage on scan-heavy seeker queries (Figs. 5 and 7).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from ...errors import ExecutionError
from ..storage.catalog import Catalog
from ..storage.column_store import (
    ColumnTable,
    DictCodes,
    decode_if_coded,
    isin_sorted,
    normalize_numeric_probes,
    numeric_probe_array,
)
from ..types import SqlType
from ..types import sort_key
from .executor_row import QueryStats, _DescendingKey
from .planner import (
    DistinctNode,
    FilterNode,
    GroupNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SliceColumnsNode,
    SortNode,
    SubqueryNode,
)
from .vector_expressions import VectorResult, compile_vector_expression
from . import ast


class Batch:
    """A materialised columnar intermediate: (data, null) pairs.

    Columns pruned away by projection pushdown are ``None`` placeholders;
    touching one is a planner bug and fails loudly rather than silently
    producing wrong data.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: list[Optional[VectorResult]], length: int) -> None:
        self.columns = columns
        self.length = length

    def column(self, position: int) -> VectorResult:
        column = self.columns[position]
        if column is None:
            raise ExecutionError(
                f"column {position} was pruned by projection pushdown but is "
                "being read -- planner bug"
            )
        return column

    def gather(self, positions: np.ndarray) -> "Batch":
        return Batch(
            [
                None if column is None else (column[0][positions], column[1][positions])
                for column in self.columns
            ],
            int(len(positions)),
        )

    def to_rows(self) -> list[tuple]:
        """Materialise Python tuples (result sets, sort fallbacks)."""
        if not self.columns:
            return [()] * self.length
        converted = []
        for column in self.columns:
            if column is None:
                raise ExecutionError(
                    "materialising a batch with pruned columns -- planner bug"
                )
            data, null = column
            if isinstance(data, DictCodes):
                values = data.decode()
            elif data.dtype == object:
                values = data
            else:
                values = data.tolist()
            converted.append((values, null))
        rows = []
        for i in range(self.length):
            rows.append(
                tuple(
                    None if null[i] else _pythonify(values[i])
                    for values, null in converted
                )
            )
        return rows

    @classmethod
    def from_rows(cls, rows: list[tuple], width: int) -> "Batch":
        columns: list[VectorResult] = []
        length = len(rows)
        for position in range(width):
            data = np.empty(length, dtype=object)
            null = np.zeros(length, dtype=bool)
            for i, row in enumerate(rows):
                value = row[position]
                if value is None:
                    null[i] = True
                data[i] = value
            columns.append((data, null))
        return cls(columns, length)


class _TableSource:
    """ColumnSource over a stored table (optionally a row subset); used for
    evaluating scan residual predicates without materialising a batch."""

    __slots__ = ("_table", "_positions", "_names", "length", "_cache")

    def __init__(self, table: ColumnTable, positions: Optional[np.ndarray], names: list[str]) -> None:
        self._table = table
        self._positions = positions
        self._names = names
        self.length = table.num_rows if positions is None else int(len(positions))
        self._cache: dict[int, VectorResult] = {}

    def column(self, position: int) -> VectorResult:
        cached = self._cache.get(position)
        if cached is None:
            cached = self._table.column_values(self._names[position], self._positions)
            self._cache[position] = cached
        return cached


class ColumnExecutor:
    """Executes a plan tree against :class:`ColumnTable` storage."""

    def __init__(
        self,
        catalog: Catalog,
        params: Optional[Mapping[str, Any]] = None,
        stats: Optional[QueryStats] = None,
    ) -> None:
        self._catalog = catalog
        self._params = params
        self.stats = stats if stats is not None else QueryStats()

    # -- dispatch --------------------------------------------------------------

    def execute(self, node: PlanNode) -> Batch:
        if isinstance(node, ScanNode):
            return self._execute_scan(node)
        if isinstance(node, SubqueryNode):
            return self.execute(node.child)
        if isinstance(node, JoinNode):
            return self._execute_join(node)
        if isinstance(node, FilterNode):
            return self._execute_filter(node)
        if isinstance(node, GroupNode):
            return self._execute_group(node)
        if isinstance(node, ProjectNode):
            return self._execute_project(node)
        if isinstance(node, SortNode):
            return self._execute_sort(node)
        if isinstance(node, LimitNode):
            batch = self.execute(node.child)
            if batch.length <= node.count:
                return batch
            return batch.gather(np.arange(node.count))
        if isinstance(node, DistinctNode):
            return self._execute_distinct(node)
        if isinstance(node, SliceColumnsNode):
            batch = self.execute(node.child)
            return Batch(batch.columns[: node.count], batch.length)
        raise ExecutionError(f"column executor cannot handle {type(node).__name__}")

    # -- scan ---------------------------------------------------------------------

    def _execute_scan(self, node: ScanNode) -> Batch:
        if node.table == "__dual__":
            return Batch([], 1)
        table = self._catalog.get(node.table)
        if not isinstance(table, ColumnTable):
            raise ExecutionError(
                f"table {node.table!r} is not column-store backed; "
                "use the matching executor for the database backend"
            )
        names = [name for _, name in node.schema.columns]

        positions: Optional[np.ndarray] = None
        remaining_sargable = list(node.sargable)
        indexed = next((p for p in remaining_sargable if table.has_index(p.column)), None)
        if indexed is not None:
            positions = table.index_lookup(indexed.column, indexed.values)
            remaining_sargable.remove(indexed)
            self.stats.index_scans += 1
            self.stats.rows_scanned += int(len(positions))
        elif remaining_sargable:
            mask = table.isin_mask(remaining_sargable[0].column, remaining_sargable[0].values)
            for predicate in remaining_sargable[1:]:
                mask &= table.isin_mask(predicate.column, predicate.values)
            remaining_sargable = []
            positions = np.nonzero(mask)[0]
            self.stats.seq_scans += 1
            self.stats.rows_scanned += table.num_rows
        else:
            self.stats.seq_scans += 1
            self.stats.rows_scanned += table.num_rows

        if remaining_sargable or node.residual:
            source = _TableSource(table, positions, names)
            keep = np.ones(source.length, dtype=bool)
            for predicate in remaining_sargable:
                position = node.schema.resolve(predicate.column)
                data, null = source.column(position)
                keep &= _membership_mask(data, null, predicate.values)
            for predicate in node.residual:
                evaluator = compile_vector_expression(predicate, node.schema, self._params)
                data, null = evaluator(source)
                keep &= _as_bool_array(data) & ~null
            subset = np.nonzero(keep)[0]
            positions = subset if positions is None else positions[subset]

        required = node.required
        coded = node.coded or ()
        schema_types = [column.sql_type for column in table.schema.columns]
        columns: list = []
        for position, name in enumerate(names):
            if required is not None and position not in required:
                columns.append(None)
                continue
            if position in coded and schema_types[position] is SqlType.TEXT:
                # Every consumer is code-safe: deliver dictionary codes
                # instead of gathered strings (decoded lazily at result
                # materialisation, if ever).
                codes, dictionary = table.text_codes(name, positions)
                columns.append(
                    (DictCodes(codes, dictionary), np.asarray(codes) < 0)
                )
                continue
            columns.append(table.column_values(name, positions))
        length = table.num_rows if positions is None else int(len(positions))
        return Batch(columns, length)

    # -- join ----------------------------------------------------------------------

    def _execute_join(self, node: JoinNode) -> Batch:
        left = self.execute(node.left)
        right = self.execute(node.right)

        if not node.left_key_positions:
            return self._cross_join(node, left, right)

        left_codes, right_codes, left_valid, right_valid = _join_key_codes(
            left, right, node.left_key_positions, node.right_key_positions
        )

        build_positions_all = np.nonzero(right_valid)[0]
        probe_positions_all = np.nonzero(left_valid)[0]
        build_keys = right_codes[build_positions_all]
        probe_keys = left_codes[probe_positions_all]

        probe_idx, build_idx = _match_keys(probe_keys, build_keys)
        left_idx = probe_positions_all[probe_idx]
        right_idx = build_positions_all[build_idx]

        combined = Batch(
            _gather_columns(left.columns, left_idx)
            + _gather_columns(right.columns, right_idx),
            int(len(left_idx)),
        )
        if node.residual:
            keep = np.ones(combined.length, dtype=bool)
            for predicate in node.residual:
                evaluator = compile_vector_expression(predicate, node.schema, self._params)
                data, null = evaluator(combined)
                keep &= _as_bool_array(data) & ~null
            subset = np.nonzero(keep)[0]
            combined = combined.gather(subset)
            left_idx = left_idx[subset]

        if node.join_type == "left":
            matched = np.zeros(left.length, dtype=bool)
            matched[left_idx] = True
            unmatched = np.nonzero(~matched)[0]
            if unmatched.size:
                pad_left = _gather_columns(left.columns, unmatched)
                pad_right = [
                    None
                    if column is None
                    else (
                        np.zeros(len(unmatched), dtype=column[0].dtype)
                        if column[0].dtype != object
                        else np.empty(len(unmatched), dtype=object),
                        np.ones(len(unmatched), dtype=bool),
                    )
                    for column in right.columns
                ]
                pad = Batch(pad_left + pad_right, int(len(unmatched)))
                combined = _concat_batches(combined, pad)
        self.stats.rows_joined += combined.length
        return combined

    def _cross_join(self, node: JoinNode, left: Batch, right: Batch) -> Batch:
        left_idx = np.repeat(np.arange(left.length), right.length)
        right_idx = np.tile(np.arange(right.length), left.length)
        combined = Batch(
            _gather_columns(left.columns, left_idx)
            + _gather_columns(right.columns, right_idx),
            int(len(left_idx)),
        )
        if node.residual:
            keep = np.ones(combined.length, dtype=bool)
            for predicate in node.residual:
                evaluator = compile_vector_expression(predicate, node.schema, self._params)
                data, null = evaluator(combined)
                keep &= _as_bool_array(data) & ~null
            combined = combined.gather(np.nonzero(keep)[0])
        return combined

    # -- filter / project -------------------------------------------------------------

    def _execute_filter(self, node: FilterNode) -> Batch:
        batch = self.execute(node.child)
        evaluator = compile_vector_expression(node.predicate, node.child.schema, self._params)
        data, null = evaluator(batch)
        keep = _as_bool_array(data) & ~null
        return batch.gather(np.nonzero(keep)[0])

    def _execute_project(self, node: ProjectNode) -> Batch:
        batch = self.execute(node.child)
        columns = [
            compile_vector_expression(expression, node.child.schema, self._params)(batch)
            for expression in node.expressions
        ]
        return Batch(columns, batch.length)

    # -- group by -----------------------------------------------------------------------

    def _execute_group(self, node: GroupNode) -> Batch:
        batch = self.execute(node.child)
        key_vectors = [
            compile_vector_expression(key, node.child.schema, self._params)(batch)
            for key in node.keys
        ]
        argument_vectors = [
            compile_vector_expression(agg.argument, node.child.schema, self._params)(batch)
            if agg.argument is not None
            else None
            for agg in node.aggregates
        ]

        if node.keys:
            group_ids, n_groups, representatives = _group_ids(key_vectors)
        else:
            group_ids = np.zeros(batch.length, dtype=np.int64)
            n_groups = 1 if batch.length else 0
            representatives = np.zeros(min(batch.length, 1), dtype=np.int64)
            if n_groups == 0:
                # Global aggregate over empty input: one synthetic group.
                n_groups = 1
                group_ids = np.zeros(0, dtype=np.int64)
                representatives = np.zeros(0, dtype=np.int64)

        self.stats.groups_built += n_groups

        columns: list[VectorResult] = []
        for data, null in key_vectors:
            columns.append((data[representatives], null[representatives]))
        if node.keys and len(representatives) != n_groups:  # pragma: no cover - safety
            raise ExecutionError("group representative mismatch")

        for aggregate, argument in zip(node.aggregates, argument_vectors):
            columns.append(
                _vector_aggregate(aggregate, argument, group_ids, n_groups)
            )
        return Batch(columns, n_groups)

    # -- sort / distinct ------------------------------------------------------------------

    def _execute_sort(self, node: SortNode) -> Batch:
        batch = self.execute(node.child)
        if batch.length <= 1:
            return batch
        key_columns = [batch.column(position) for position in node.key_positions]

        if any(data.dtype == object for data, _ in key_columns):
            return self._sort_fallback(batch, node)

        if (
            node.limit_hint is not None
            and node.limit_hint < batch.length
            and len(key_columns) == 1
        ):
            data, null = key_columns[0]
            keys = _sortable(data, null, node.descending[0])
            k = node.limit_hint
            partition = np.argpartition(keys, k - 1)[:k]
            order = partition[np.argsort(keys[partition], kind="stable")]
            # argpartition breaks ties arbitrarily; refine by a stable sort
            # of the shortlisted rows only (identical to full sort when the
            # k-th key value is unique; ties at the boundary are arbitrary
            # exactly as LIMIT is in SQL).
            return batch.gather(order)

        lexsort_keys = []
        for (data, null), desc in zip(reversed(key_columns), reversed(node.descending)):
            lexsort_keys.append(_sortable(data, null, desc))
        order = np.lexsort(lexsort_keys)
        if node.limit_hint is not None and node.limit_hint < len(order):
            order = order[: node.limit_hint]
        return batch.gather(order)

    def _sort_fallback(self, batch: Batch, node: SortNode) -> Batch:
        rows = batch.to_rows()
        indices = list(range(len(rows)))
        for position, desc in reversed(list(zip(node.key_positions, node.descending))):
            if desc:
                indices.sort(key=lambda i, p=position: _DescendingKey(rows[i][p]))
            else:
                indices.sort(key=lambda i, p=position: sort_key(rows[i][p]))
        if node.limit_hint is not None:
            indices = indices[: node.limit_hint]
        return batch.gather(np.array(indices, dtype=np.int64))

    def _execute_distinct(self, node: DistinctNode) -> Batch:
        batch = self.execute(node.child)
        rows = batch.to_rows()
        seen: set = set()
        keep: list[int] = []
        for i, row in enumerate(rows):
            if row not in seen:
                seen.add(row)
                keep.append(i)
        if len(keep) == batch.length:
            return batch
        return batch.gather(np.array(keep, dtype=np.int64))


# --------------------------------------------------------------------------
# Vectorised grouping / aggregation kernels
# --------------------------------------------------------------------------


def _factorize(data: np.ndarray, null: np.ndarray) -> tuple[np.ndarray, int]:
    """Map values to dense codes; all NULLs share one code (SQL GROUP BY)."""
    codes = np.empty(len(data), dtype=np.int64)
    if data.dtype == object:
        lookup: dict[Any, int] = {}
        next_code = 0
        for i, value in enumerate(data):
            if null[i]:
                codes[i] = -1
                continue
            code = lookup.get(value)
            if code is None:
                code = next_code
                lookup[value] = code
                next_code += 1
            codes[i] = code
        n = next_code
    else:
        not_null = ~null
        if not_null.any():
            uniques, inverse = np.unique(data[not_null], return_inverse=True)
            codes[not_null] = inverse
            n = len(uniques)
        else:
            n = 0
    if null.any():
        codes[null] = n
        n += 1
    return codes, n


def _group_ids(key_vectors: list[VectorResult]) -> tuple[np.ndarray, int, np.ndarray]:
    """Combine key columns into dense group ids.

    Returns ``(group_ids, n_groups, representatives)`` where
    *representatives* holds the first input row of each group (used to
    output key values). Groups are emitted in sorted-code order, which is
    deterministic; callers needing a specific order sort afterwards.
    """
    combined, n = _factorize(*key_vectors[0])
    for data, null in key_vectors[1:]:
        codes, n_codes = _factorize(data, null)
        combined = combined * n_codes + codes
        uniques, combined = np.unique(combined, return_inverse=True)
    uniques, representatives, group_ids = np.unique(
        combined, return_index=True, return_inverse=True
    )
    return group_ids, len(uniques), representatives


def _vector_aggregate(
    aggregate: ast.Aggregate,
    argument: Optional[VectorResult],
    group_ids: np.ndarray,
    n_groups: int,
) -> VectorResult:
    func = aggregate.func
    no_null = np.zeros(n_groups, dtype=bool)

    if func == "COUNT" and argument is None:
        counts = np.bincount(group_ids, minlength=n_groups).astype(np.int64)
        return counts, no_null

    if argument is None:  # pragma: no cover - parser guarantees argument
        raise ExecutionError(f"aggregate {func} requires an argument")
    data, null = argument
    valid = ~null

    if func == "COUNT":
        if aggregate.distinct:
            return _count_distinct(data, null, group_ids, n_groups), no_null
        counts = np.bincount(group_ids[valid], minlength=n_groups).astype(np.int64)
        return counts, no_null

    if func in ("SUM", "AVG"):
        if aggregate.distinct:
            data, null, group_ids = _distinct_pairs(data, null, group_ids)
            valid = ~null
        numeric = data.astype(np.float64) if data.dtype != object else _object_to_float(data, null)
        weights = np.where(valid, numeric, 0.0)
        sums = np.bincount(group_ids, weights=weights, minlength=n_groups)
        counts = np.bincount(group_ids[valid], minlength=n_groups)
        null_out = counts == 0
        if func == "AVG":
            safe = np.where(null_out, 1, counts)
            return sums / safe, null_out
        if data.dtype in (np.int64, np.int32, np.bool_) or data.dtype == bool:
            return np.round(sums).astype(np.int64), null_out
        return sums, null_out

    if func in ("MIN", "MAX"):
        return _min_max(data, null, group_ids, n_groups, is_min=(func == "MIN"))

    raise ExecutionError(f"unsupported aggregate: {func}")


def _count_distinct(
    data: np.ndarray, null: np.ndarray, group_ids: np.ndarray, n_groups: int
) -> np.ndarray:
    codes, n_codes = _factorize(data, null)
    valid = ~null
    if not valid.any():
        return np.zeros(n_groups, dtype=np.int64)
    pairs = group_ids[valid] * np.int64(max(n_codes, 1)) + codes[valid]
    unique_pairs = np.unique(pairs)
    groups_of_pairs = unique_pairs // max(n_codes, 1)
    return np.bincount(groups_of_pairs.astype(np.int64), minlength=n_groups).astype(np.int64)


def _distinct_pairs(
    data: np.ndarray, null: np.ndarray, group_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicate (group, value) pairs for SUM(DISTINCT ...)."""
    codes, n_codes = _factorize(data, null)
    pairs = group_ids * np.int64(max(n_codes, 1) + 1) + np.where(null, n_codes, codes)
    _, first = np.unique(pairs, return_index=True)
    return data[first], null[first], group_ids[first]


def _min_max(
    data: np.ndarray,
    null: np.ndarray,
    group_ids: np.ndarray,
    n_groups: int,
    is_min: bool,
) -> VectorResult:
    valid = ~null
    counts = np.bincount(group_ids[valid], minlength=n_groups)
    null_out = counts == 0
    if data.dtype == object:
        best: list[Any] = [None] * n_groups
        for value, group, ok in zip(data, group_ids, valid):
            if not ok:
                continue
            current = best[group]
            if current is None or (value < current if is_min else value > current):
                best[group] = value
        out = np.empty(n_groups, dtype=object)
        out[:] = best
        return out, null_out
    numeric = data.astype(np.float64)
    fill = np.inf if is_min else -np.inf
    out = np.full(n_groups, fill, dtype=np.float64)
    if is_min:
        np.minimum.at(out, group_ids[valid], numeric[valid])
    else:
        np.maximum.at(out, group_ids[valid], numeric[valid])
    out = np.where(null_out, 0.0, out)
    if data.dtype == bool:
        return out.astype(bool), null_out
    if data.dtype in (np.int64, np.int32):
        return out.astype(np.int64), null_out
    return out, null_out


def _object_to_float(data: np.ndarray, null: np.ndarray) -> np.ndarray:
    out = np.zeros(len(data), dtype=np.float64)
    for i, value in enumerate(data):
        if not null[i] and value is not None and not isinstance(value, str):
            out[i] = float(value)
    return out


# --------------------------------------------------------------------------
# Join key encoding
# --------------------------------------------------------------------------


def _join_key_codes(
    left: Batch,
    right: Batch,
    left_positions: list[int],
    right_positions: list[int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Dense, cross-side-consistent codes for multi-column join keys.

    Each key column is factorised over the *concatenation* of both sides
    (so equal values share a code regardless of side), then mixed-radix
    combined -- with a refactorisation of the concatenated combined codes
    after each step to bound their magnitude and avoid int64 overflow.

    Returns ``(left_codes, right_codes, left_valid, right_valid)`` where
    the valid masks exclude rows with a NULL in any key column (SQL inner
    joins never match NULL keys).
    """
    n_left = left.length
    combined: Optional[np.ndarray] = None
    left_valid = np.ones(n_left, dtype=bool)
    right_valid = np.ones(right.length, dtype=bool)
    for left_position, right_position in zip(left_positions, right_positions):
        l_data, l_null = left.column(left_position)
        r_data, r_null = right.column(right_position)
        both = _concat_arrays(l_data, r_data)
        both_null = np.concatenate([l_null, r_null])
        codes, n_codes = _factorize(both, both_null)
        left_valid &= ~l_null
        right_valid &= ~r_null
        if combined is None:
            combined = codes.astype(np.int64)
        else:
            combined = combined * np.int64(max(n_codes, 1)) + codes
            _, combined = np.unique(combined, return_inverse=True)
    assert combined is not None
    return combined[:n_left], combined[n_left:], left_valid, right_valid


def _concat_arrays(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if isinstance(left, DictCodes) or isinstance(right, DictCodes):
        # Codes from different scans index different dictionaries; decode
        # to plain strings before mixing (left-join padding, unions).
        left, right = decode_if_coded(left), decode_if_coded(right)
    if left.dtype == right.dtype:
        return np.concatenate([left, right])
    return np.concatenate([left.astype(object), right.astype(object)])


def _match_keys(probe_keys: np.ndarray, build_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All (probe position, build position) pairs with equal keys."""
    if len(build_keys) == 0 or len(probe_keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(build_keys, kind="stable")
    sorted_keys = build_keys[order]
    unique_keys, starts = np.unique(sorted_keys, return_index=True)
    ends = np.append(starts[1:], len(sorted_keys))

    slot = np.searchsorted(unique_keys, probe_keys)
    slot_clipped = np.minimum(slot, len(unique_keys) - 1)
    hits = unique_keys[slot_clipped] == probe_keys
    probe_hits = np.nonzero(hits)[0]
    hit_slots = slot_clipped[probe_hits]
    run_starts = starts[hit_slots]
    run_ends = ends[hit_slots]
    counts = run_ends - run_starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total) - offsets
    build_sorted_positions = np.repeat(run_starts, counts) + within
    probe_positions = np.repeat(probe_hits, counts)
    return probe_positions.astype(np.int64), order[build_sorted_positions].astype(np.int64)


# --------------------------------------------------------------------------
# Misc helpers
# --------------------------------------------------------------------------


def _membership_mask(data: np.ndarray, null: np.ndarray, values: list) -> np.ndarray:
    if data.dtype == object:
        members = frozenset(v for v in values if v is not None)
        mask = np.fromiter((v in members for v in data), count=len(data), dtype=bool)
    else:
        numeric = normalize_numeric_probes(values)
        if not numeric:
            return np.zeros(len(data), dtype=bool)
        wanted = numeric_probe_array(numeric, data.dtype)
        if wanted is None:
            return np.zeros(len(data), dtype=bool)
        probe = data if wanted.dtype == data.dtype else data.astype(np.float64)
        mask = isin_sorted(probe, wanted)
    return mask & ~null


def _as_bool_array(data: np.ndarray) -> np.ndarray:
    if data.dtype == bool:
        return data
    if data.dtype == object:
        return np.fromiter((bool(v) for v in data), count=len(data), dtype=bool)
    return data != 0


def _sortable(data: np.ndarray, null: np.ndarray, descending: bool) -> np.ndarray:
    """Float sort key with NULLS LAST in both directions."""
    numeric = data.astype(np.float64) if data.dtype != np.float64 else data.copy()
    if descending:
        numeric = -numeric
    numeric[null] = np.inf
    return numeric


def _concat_batches(first: Batch, second: Batch) -> Batch:
    columns: list[Optional[VectorResult]] = []
    for a, b in zip(first.columns, second.columns):
        if a is None or b is None:
            columns.append(None)
            continue
        columns.append(
            (_concat_arrays(a[0], b[0]), np.concatenate([a[1], b[1]]))
        )
    return Batch(columns, first.length + second.length)


def _gather_columns(columns: list, idx: np.ndarray) -> list:
    """Gather each (data, null) column at *idx*, passing pruned columns
    (None) through."""
    return [
        None if column is None else (column[0][idx], column[1][idx])
        for column in columns
    ]


def _pythonify(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value
