"""Tokeniser for the engine's SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import SqlSyntaxError

KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "GROUP",
        "ORDER",
        "BY",
        "HAVING",
        "LIMIT",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "IS",
        "NULL",
        "TRUE",
        "FALSE",
        "INNER",
        "LEFT",
        "JOIN",
        "ON",
        "ASC",
        "DESC",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "BETWEEN",
        "LIKE",
    }
)

# Multi-character operators must be matched before their prefixes.
_OPERATORS = ("::", "<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is one of ``keyword``, ``identifier``, ``number``, ``string``,
    ``parameter``, ``operator``, or ``eof``. ``position`` is the one-based
    character offset in the original SQL text, kept for error messages.
    """

    kind: str
    value: str
    position: int


def tokenize(sql: str) -> list[Token]:
    """Convert SQL text into a token list ending with an ``eof`` token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            value, i = _read_string(sql, i)
            tokens.append(Token("string", value, i))
            continue
        if ch == '"':
            value, i = _read_quoted_identifier(sql, i)
            tokens.append(Token("identifier", value, i))
            continue
        if ch == ":" and not sql.startswith("::", i):
            start = i + 1
            j = start
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            if j == start:
                raise SqlSyntaxError("':' must introduce a named parameter", position=i + 1)
            tokens.append(Token("parameter", sql[start:j], start))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token("number", value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[start:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, start + 1))
            else:
                tokens.append(Token("identifier", word, start + 1))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token("operator", op, i + 1))
                i += len(op)
                matched = True
                break
        if not matched:
            raise SqlSyntaxError(f"unexpected character {ch!r}", position=i + 1)
    tokens.append(Token("eof", "", n + 1))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    """Read a single-quoted SQL string starting at *start*; ``''`` escapes
    a quote, as in standard SQL."""
    chunks: list[str] = []
    i = start + 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                chunks.append("'")
                i += 2
                continue
            return "".join(chunks), i + 1
        chunks.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", position=start + 1)


def _read_quoted_identifier(sql: str, start: int) -> tuple[str, int]:
    """Read a double-quoted identifier; ``""`` escapes a quote."""
    chunks: list[str] = []
    i = start + 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == '"':
            if i + 1 < n and sql[i + 1] == '"':
                chunks.append('"')
                i += 2
                continue
            return "".join(chunks), i + 1
        chunks.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated quoted identifier", position=start + 1)


def _read_number(sql: str, start: int) -> tuple[str, int]:
    """Read an integer or decimal literal (optional exponent)."""
    i = start
    n = len(sql)
    seen_dot = False
    while i < n and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
        if sql[i] == ".":
            seen_dot = True
        i += 1
    if i < n and sql[i] in "eE":
        j = i + 1
        if j < n and sql[j] in "+-":
            j += 1
        if j < n and sql[j].isdigit():
            while j < n and sql[j].isdigit():
                j += 1
            i = j
    return sql[start:i], i
