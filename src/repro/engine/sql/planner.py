"""Logical planner: AST -> physical plan tree.

The plan tree is interpreted by two executors (row iterator and columnar
vectorised); the planner handles everything executor-independent:

* FROM-tree construction (scans, derived tables, join key extraction),
* predicate classification -- sargable ``col IN (...)`` / ``col = const``
  conjuncts are pushed into scans where BLEND's in-database indexes on
  ``CellValue``/``TableId`` can serve them (paper §V),
* aggregate discovery and the post-aggregation namespace,
* ORDER BY / LIMIT / DISTINCT shaping, including alias resolution.

Parameters are bound at plan time (this is also how the BLEND optimizer's
rewritten ``TableId IN :ir`` predicates become sargable) -- but every
plan-time binding site records its symbolic *source* (literal value or
parameter name), so a finished plan can be **rebound** to new parameter
values with :func:`rebind_plan` without re-planning. That is what backs
the ``Database`` plan cache: plan *structure* depends only on the SQL
text and each parameter's shape (scalar / sequence / int / null), so the
four seeker templates plan once and rebind per execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from ...errors import PlanningError
from . import ast
from .expressions import bind_parameter
from .schema import Schema


# --------------------------------------------------------------------------
# Physical plan nodes
# --------------------------------------------------------------------------


@dataclass
class SargablePredicate:
    """``column IN values`` pushed into a scan (single value for ``=``).

    ``sources`` keeps the symbolic recipe behind ``values`` -- a tuple of
    ``("lit", value)`` / ``("param", name)`` entries -- so a cached plan
    can recompute ``values`` against fresh parameters (:meth:`rebind`).
    """

    column: str
    values: list[Any]
    sources: Optional[tuple] = None

    def has_params(self) -> bool:
        return self.sources is not None and any(
            kind == "param" for kind, _ in self.sources
        )

    def rebind(self, params: Optional[Mapping[str, Any]]) -> None:
        self.values = _expand_sources(self.sources, params)


def _expand_sources(
    sources: tuple, params: Optional[Mapping[str, Any]]
) -> list[Any]:
    """Evaluate a sargable-value recipe against concrete parameters,
    mirroring the plan-time expansion (NULLs dropped, sequences spliced)."""
    values: list[Any] = []
    for kind, payload in sources:
        if kind == "lit":
            if payload is not None:
                values.append(payload)
            continue
        bound = bind_parameter(params, payload)
        if isinstance(bound, (list, tuple, set, frozenset)):
            values.extend(v for v in bound if v is not None)
        elif bound is not None:
            values.append(bound)
    return values


@dataclass
class PlanNode:
    """Base physical node; ``schema`` describes the output columns."""

    schema: Schema = field(init=False)


@dataclass
class ScanNode(PlanNode):
    table: str
    binding: str
    sargable: list[SargablePredicate]
    residual: list[ast.Node]
    # Projection pushdown: positions the rest of the plan actually reads.
    # ``None`` = all columns. Residual predicates read the table directly
    # and do not require materialisation, so they are not included here.
    required: Optional[set[int]] = None
    # Dictionary-code pushup: positions whose every consumer is code-safe
    # (grouping, COUNT(DISTINCT), pass-through projection); the column
    # executor delivers these as ``DictCodes`` instead of gathered
    # strings. Annotated by :func:`_annotate_coded`; only text columns
    # are affected at execution time.
    coded: Optional[set[int]] = None

    def __post_init__(self) -> None:
        self.schema = Schema([])  # filled by the planner


@dataclass
class SubqueryNode(PlanNode):
    child: PlanNode
    binding: str

    def __post_init__(self) -> None:
        self.schema = self.child.schema.rebind(self.binding)


@dataclass
class JoinNode(PlanNode):
    left: PlanNode
    right: PlanNode
    left_key_positions: list[int]
    right_key_positions: list[int]
    residual: list[ast.Node]
    join_type: str = "inner"

    def __post_init__(self) -> None:
        self.schema = self.left.schema.concat(self.right.schema)


@dataclass
class FilterNode(PlanNode):
    child: PlanNode
    predicate: ast.Node

    def __post_init__(self) -> None:
        self.schema = self.child.schema


@dataclass
class GroupNode(PlanNode):
    child: PlanNode
    keys: list[ast.Node]
    aggregates: list[ast.Aggregate]

    def __post_init__(self) -> None:
        columns: list[tuple[Optional[str], str]] = []
        for i in range(len(self.keys)):
            columns.append((None, f"__k{i}"))
        for i in range(len(self.aggregates)):
            columns.append((None, f"__a{i}"))
        self.schema = Schema(columns)


@dataclass
class ProjectNode(PlanNode):
    child: PlanNode
    expressions: list[ast.Node]
    names: list[str]

    def __post_init__(self) -> None:
        self.schema = Schema([(None, name) for name in self.names])


@dataclass
class SortNode(PlanNode):
    child: PlanNode
    key_positions: list[int]
    descending: list[bool]
    limit_hint: Optional[int] = None
    # Parameter name behind limit_hint, for plan-cache rebinding.
    limit_param: Optional[str] = None

    def __post_init__(self) -> None:
        self.schema = self.child.schema


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    count: int
    # Parameter name behind count, for plan-cache rebinding.
    param: Optional[str] = None

    def __post_init__(self) -> None:
        self.schema = self.child.schema


@dataclass
class DistinctNode(PlanNode):
    child: PlanNode

    def __post_init__(self) -> None:
        self.schema = self.child.schema


@dataclass
class SliceColumnsNode(PlanNode):
    """Keep the first *count* columns, renamed to *names*.

    Used to drop helper columns (ORDER BY expressions, HAVING) appended by
    the projection stage; positional so duplicate column names from
    ``SELECT *`` joins cannot cause ambiguity.
    """

    child: PlanNode
    count: int
    names: list[str]

    def __post_init__(self) -> None:
        self.schema = Schema([(None, name) for name in self.names])


# --------------------------------------------------------------------------
# Planner
# --------------------------------------------------------------------------


class TableResolver:
    """Callback giving the planner access to catalog schemas without a
    dependency on the storage layer: ``resolve(name) -> list[column name]``."""

    def __init__(self, lookup) -> None:
        self._lookup = lookup

    def column_names(self, table_name: str) -> list[str]:
        return self._lookup(table_name)


def plan_select(
    select: ast.Select,
    resolver: TableResolver,
    params: Optional[Mapping[str, Any]] = None,
) -> PlanNode:
    """Plan a SELECT statement into a physical tree (with projection
    pushdown annotated on the scans)."""
    root = _Planner(resolver, params).plan(select)
    _prune_columns(root, set(range(len(root.schema))))
    _annotate_coded(root, [True] * len(root.schema))
    return root


def _expression_positions(expression: ast.Node, schema: Schema) -> set[int]:
    """Schema positions referenced by an expression."""
    positions: set[int] = set()
    for node in ast.walk(expression):
        if isinstance(node, ast.ColumnRef):
            positions.add(schema.resolve(node.name, node.table))
    return positions


def _prune_columns(node: PlanNode, needed: set[int]) -> None:
    """Projection pushdown: annotate every scan with the column positions
    its consumers actually read. Residual predicates evaluate against the
    stored table directly, so they do not force materialisation."""
    if isinstance(node, ScanNode):
        node.required = set(needed)
        return
    if isinstance(node, SubqueryNode):
        _prune_columns(node.child, needed)
        return
    if isinstance(node, JoinNode):
        combined = set(needed)
        combined.update(
            position
            for predicate in node.residual
            for position in _expression_positions(predicate, node.schema)
        )
        left_width = len(node.left.schema)
        left_needed = {p for p in combined if p < left_width}
        right_needed = {p - left_width for p in combined if p >= left_width}
        left_needed.update(node.left_key_positions)
        right_needed.update(node.right_key_positions)
        _prune_columns(node.left, left_needed)
        _prune_columns(node.right, right_needed)
        return
    if isinstance(node, FilterNode):
        child_needed = set(needed)
        child_needed.update(_expression_positions(node.predicate, node.child.schema))
        _prune_columns(node.child, child_needed)
        return
    if isinstance(node, GroupNode):
        child_needed: set[int] = set()
        for key in node.keys:
            child_needed.update(_expression_positions(key, node.child.schema))
        for aggregate in node.aggregates:
            if aggregate.argument is not None:
                child_needed.update(
                    _expression_positions(aggregate.argument, node.child.schema)
                )
        _prune_columns(node.child, child_needed)
        return
    if isinstance(node, ProjectNode):
        child_needed: set[int] = set()
        for expression in node.expressions:
            child_needed.update(_expression_positions(expression, node.child.schema))
        _prune_columns(node.child, child_needed)
        return
    if isinstance(node, SortNode):
        child_needed = set(needed)
        child_needed.update(node.key_positions)
        _prune_columns(node.child, child_needed)
        return
    if isinstance(node, DistinctNode):
        # Row deduplication compares every output column.
        _prune_columns(node.child, set(range(len(node.child.schema))))
        return
    if isinstance(node, LimitNode):
        _prune_columns(node.child, needed)
        return
    if isinstance(node, SliceColumnsNode):
        _prune_columns(node.child, set(range(node.count)) | set())
        return
    raise PlanningError(f"cannot prune columns of {type(node).__name__}")


def _annotate_coded(node: PlanNode, safe: list[bool]) -> None:
    """Dictionary-code pushup: mark scan positions whose every consumer
    tolerates ``DictCodes`` (int32 codes over a sorted dictionary) in
    place of materialised strings.

    ``safe[i]`` says position *i* of *node*'s output may carry codes. The
    root output is always safe (result materialisation decodes); walking
    down, a position stays safe only while every read is code-exact:

    * pass-through projection / group keys that are bare column refs
      (factorisation over codes equals factorisation over strings -- the
      dictionary is sorted and deduplicated),
    * ``COUNT`` / ``COUNT(DISTINCT)`` over a bare column ref,
    * DISTINCT / LIMIT / result output (these decode first).

    Anything else -- expressions, comparisons, join keys, sort keys,
    other aggregates -- needs real values and clears the flag. The
    annotation is purely structural, so cached plans keep it across
    rebinds.
    """
    if isinstance(node, ScanNode):
        node.coded = {i for i, ok in enumerate(safe) if ok}
        return
    if isinstance(node, SubqueryNode):
        _annotate_coded(node.child, safe)
        return
    if isinstance(node, JoinNode):
        combined = list(safe)
        unsafe = set(
            position
            for predicate in node.residual
            for position in _expression_positions(predicate, node.schema)
        )
        left_width = len(node.left.schema)
        unsafe.update(node.left_key_positions)
        unsafe.update(p + left_width for p in node.right_key_positions)
        for position in unsafe:
            combined[position] = False
        _annotate_coded(node.left, combined[:left_width])
        _annotate_coded(node.right, combined[left_width:])
        return
    if isinstance(node, FilterNode):
        child_safe = list(safe)
        for position in _expression_positions(node.predicate, node.child.schema):
            child_safe[position] = False
        _annotate_coded(node.child, child_safe)
        return
    if isinstance(node, GroupNode):
        child_safe = [True] * len(node.child.schema)
        for i, key in enumerate(node.keys):
            if isinstance(key, ast.ColumnRef):
                position = node.child.schema.resolve(key.name, key.table)
                child_safe[position] = child_safe[position] and safe[i]
            else:
                for position in _expression_positions(key, node.child.schema):
                    child_safe[position] = False
        for aggregate in node.aggregates:
            if aggregate.argument is None:
                continue
            if aggregate.func == "COUNT" and isinstance(aggregate.argument, ast.ColumnRef):
                continue  # count/count-distinct are code-exact
            for position in _expression_positions(aggregate.argument, node.child.schema):
                child_safe[position] = False
        _annotate_coded(node.child, child_safe)
        return
    if isinstance(node, ProjectNode):
        child_safe = [True] * len(node.child.schema)
        for i, expression in enumerate(node.expressions):
            if isinstance(expression, ast.ColumnRef):
                position = node.child.schema.resolve(expression.name, expression.table)
                child_safe[position] = child_safe[position] and safe[i]
            else:
                for position in _expression_positions(expression, node.child.schema):
                    child_safe[position] = False
        _annotate_coded(node.child, child_safe)
        return
    if isinstance(node, SortNode):
        child_safe = list(safe)
        for position in node.key_positions:
            child_safe[position] = False
        _annotate_coded(node.child, child_safe)
        return
    if isinstance(node, (DistinctNode, LimitNode)):
        _annotate_coded(node.child, list(safe))
        return
    if isinstance(node, SliceColumnsNode):
        child_safe = list(safe[: node.count])
        child_safe.extend([True] * (len(node.child.schema) - len(child_safe)))
        _annotate_coded(node.child, child_safe)
        return
    raise PlanningError(f"cannot annotate coded columns of {type(node).__name__}")


class _Planner:
    def __init__(self, resolver: TableResolver, params: Optional[Mapping[str, Any]]) -> None:
        self._resolver = resolver
        self._params = params

    # -- entry point --------------------------------------------------------

    def plan(self, select: ast.Select) -> PlanNode:
        if select.source is None:
            return self._plan_sourceless(select)
        node = self._plan_source(select.source, _split_conjuncts(select.where))
        node, select_names = self._plan_projection_pipeline(select, node)
        return node

    # -- FROM / WHERE ----------------------------------------------------------

    def _plan_source(self, source: ast.Node, where_conjuncts: list[ast.Node]) -> PlanNode:
        node, bindings = self._build_relation(source)
        # Classify WHERE conjuncts: push single-binding ones down when the
        # relation is a bare scan; everything else filters above the tree.
        remaining: list[ast.Node] = []
        for conjunct in where_conjuncts:
            target = self._single_binding_of(conjunct, bindings)
            pushed = False
            if target is not None:
                pushed = self._push_into_scan(node, target, conjunct)
            if not pushed:
                remaining.append(conjunct)
        for conjunct in remaining:
            node = FilterNode(child=node, predicate=conjunct)
        return node

    def _build_relation(self, source: ast.Node) -> tuple[PlanNode, set[str]]:
        if isinstance(source, ast.TableRef):
            scan = ScanNode(table=source.name, binding=source.binding, sargable=[], residual=[])
            column_names = self._resolver.column_names(source.name)
            scan.schema = Schema([(source.binding, name) for name in column_names])
            return scan, {source.binding.lower()}
        if isinstance(source, ast.SubqueryRef):
            inner = self.plan(source.query)
            node = SubqueryNode(child=inner, binding=source.alias)
            return node, {source.alias.lower()}
        if isinstance(source, ast.Join):
            left, left_bindings = self._build_relation(source.left)
            right, right_bindings = self._build_relation(source.right)
            overlap = left_bindings & right_bindings
            if overlap:
                raise PlanningError(f"duplicate table alias in join: {sorted(overlap)}")
            conjuncts = _split_conjuncts(source.condition)
            left_positions: list[int] = []
            right_positions: list[int] = []
            residual: list[ast.Node] = []
            for conjunct in conjuncts:
                pair = self._extract_join_keys(conjunct, left, right, left_bindings, right_bindings)
                if pair is None:
                    residual.append(conjunct)
                else:
                    left_positions.append(pair[0])
                    right_positions.append(pair[1])
            if not left_positions and source.join_type == "inner":
                # Cross-join driven purely by residual predicates.
                pass
            join = JoinNode(
                left=left,
                right=right,
                left_key_positions=left_positions,
                right_key_positions=right_positions,
                residual=residual,
                join_type=source.join_type,
            )
            return join, left_bindings | right_bindings
        raise PlanningError(f"unsupported FROM item: {type(source).__name__}")

    def _extract_join_keys(
        self,
        conjunct: ast.Node,
        left: PlanNode,
        right: PlanNode,
        left_bindings: set[str],
        right_bindings: set[str],
    ) -> Optional[tuple[int, int]]:
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        sides = (conjunct.left, conjunct.right)
        if not all(isinstance(side, ast.ColumnRef) for side in sides):
            return None
        first, second = sides  # type: ignore[misc]
        first_side = self._binding_side(first, left_bindings, right_bindings)
        second_side = self._binding_side(second, left_bindings, right_bindings)
        if first_side == "left" and second_side == "right":
            return (
                left.schema.resolve(first.name, first.table),
                right.schema.resolve(second.name, second.table),
            )
        if first_side == "right" and second_side == "left":
            return (
                left.schema.resolve(second.name, second.table),
                right.schema.resolve(first.name, first.table),
            )
        return None

    def _binding_side(
        self, column: ast.ColumnRef, left_bindings: set[str], right_bindings: set[str]
    ) -> Optional[str]:
        if column.table is None:
            return None
        binding = column.table.lower()
        if binding in left_bindings:
            return "left"
        if binding in right_bindings:
            return "right"
        raise PlanningError(f"unknown table alias in join condition: {column.table}")

    def _single_binding_of(self, expression: ast.Node, bindings: set[str]) -> Optional[str]:
        """The single table alias referenced by *expression*, if exactly one.

        Unqualified references only count when the FROM clause has exactly
        one binding (otherwise resolution could be ambiguous and we leave
        the predicate above the join, where the full schema disambiguates).
        """
        seen: set[str] = set()
        unqualified = False
        for node in ast.walk(expression):
            if isinstance(node, ast.ColumnRef):
                if node.table is None:
                    unqualified = True
                else:
                    seen.add(node.table.lower())
        if unqualified:
            if len(bindings) == 1 and not seen:
                return next(iter(bindings))
            return None
        if len(seen) == 1:
            return next(iter(seen))
        return None

    def _push_into_scan(self, node: PlanNode, binding: str, conjunct: ast.Node) -> bool:
        """Attach *conjunct* to the scan owning *binding*. Returns False when
        that relation is not a bare scan (e.g. a derived table)."""
        scan = _find_scan(node, binding)
        if scan is None:
            return False
        sargable = self._as_sargable(conjunct)
        if sargable is not None:
            scan.sargable.append(sargable)
        else:
            scan.residual.append(conjunct)
        return True

    def _as_sargable(self, conjunct: ast.Node) -> Optional[SargablePredicate]:
        if isinstance(conjunct, ast.InList) and not conjunct.negated:
            if not isinstance(conjunct.operand, ast.ColumnRef):
                return None
            sources: list[tuple] = []
            for item in conjunct.items:
                if isinstance(item, ast.Literal):
                    sources.append(("lit", item.value))
                elif isinstance(item, ast.Parameter):
                    sources.append(("param", item.name))
                else:
                    return None
            recipe = tuple(sources)
            return SargablePredicate(
                column=conjunct.operand.name,
                values=_expand_sources(recipe, self._params),
                sources=recipe,
            )
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
            column, constant = None, None
            if isinstance(conjunct.left, ast.ColumnRef) and isinstance(
                conjunct.right, (ast.Literal, ast.Parameter)
            ):
                column, constant = conjunct.left, conjunct.right
            elif isinstance(conjunct.right, ast.ColumnRef) and isinstance(
                conjunct.left, (ast.Literal, ast.Parameter)
            ):
                column, constant = conjunct.right, conjunct.left
            if column is None:
                return None
            if isinstance(constant, ast.Parameter):
                value = bind_parameter(self._params, constant.name)
                if isinstance(value, (list, tuple, set, frozenset)):
                    return None
                recipe = (("param", constant.name),)
            else:
                value = constant.value
                recipe = (("lit", value),)
            if value is None:
                return None
            return SargablePredicate(column=column.name, values=[value], sources=recipe)
        return None

    # -- projection / aggregation pipeline -------------------------------------

    def _plan_projection_pipeline(
        self, select: ast.Select, node: PlanNode
    ) -> tuple[PlanNode, list[str]]:
        select_exprs, select_names = self._expand_select_items(select, node.schema)

        has_aggregates = bool(select.group_by) or any(
            ast.contains_aggregate(expr) for expr in select_exprs
        )
        if select.having is not None and not has_aggregates:
            has_aggregates = True
        order_exprs = [self._resolve_order_expression(item, select_exprs, select_names) for item in select.order_by]
        if not has_aggregates:
            has_aggregates = any(ast.contains_aggregate(expr) for expr in order_exprs)

        if has_aggregates:
            keys = [_normalize(key) for key in select.group_by]
            aggregates = _collect_aggregates(select_exprs + order_exprs + ([select.having] if select.having else []))
            group = GroupNode(child=node, keys=list(select.group_by), aggregates=aggregates)
            substitution = _PostAggregateSubstitution(keys, aggregates, group.schema)
            select_exprs = [substitution.apply(expr) for expr in select_exprs]
            order_exprs = [substitution.apply(expr) for expr in order_exprs]
            having = substitution.apply(select.having) if select.having is not None else None
            node = group
        else:
            having = None

        projected_exprs = list(select_exprs)
        projected_names = list(select_names)
        order_positions: list[int] = []
        for expr in order_exprs:
            position = _position_of_expression(expr, projected_exprs)
            if position is None:
                position = len(projected_exprs)
                projected_exprs.append(expr)
                projected_names.append(f"__o{position}")
            order_positions.append(position)
        having_position: Optional[int] = None
        if having is not None:
            having_position = len(projected_exprs)
            projected_exprs.append(having)
            projected_names.append("__having")

        node = ProjectNode(child=node, expressions=projected_exprs, names=projected_names)

        if having_position is not None:
            node = FilterNode(
                child=node,
                predicate=ast.ColumnRef(name="__having"),
            )

        limit_count, limit_param = self._evaluate_limit(select.limit)
        if select.order_by:
            use_hint = not select.distinct
            node = SortNode(
                child=node,
                key_positions=order_positions,
                descending=[item.descending for item in select.order_by],
                limit_hint=limit_count if use_hint else None,
                limit_param=limit_param if use_hint else None,
            )

        node = SliceColumnsNode(child=node, count=len(select_exprs), names=list(select_names))

        if select.distinct:
            node = DistinctNode(child=node)
        if limit_count is not None:
            node = LimitNode(child=node, count=limit_count, param=limit_param)
        return node, select_names

    def _expand_select_items(
        self, select: ast.Select, schema: Schema
    ) -> tuple[list[ast.Node], list[str]]:
        expressions: list[ast.Node] = []
        names: list[str] = []
        for item in select.items:
            if isinstance(item.expression, ast.Star):
                if item.expression.table is None:
                    positions = range(len(schema))
                else:
                    positions = schema.positions_for_binding(item.expression.table)
                for position in positions:
                    binding, name = schema.columns[position]
                    expressions.append(ast.ColumnRef(name=name, table=binding))
                    names.append(name)
                continue
            expressions.append(item.expression)
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expression, ast.ColumnRef):
                names.append(item.expression.name)
            elif isinstance(item.expression, ast.Aggregate):
                names.append(item.expression.func.lower())
            else:
                names.append(f"column{len(names)}")
        if not expressions:
            raise PlanningError("empty select list")
        return expressions, names

    def _resolve_order_expression(
        self, item: ast.OrderItem, select_exprs: list[ast.Node], select_names: list[str]
    ) -> ast.Node:
        expression = item.expression
        # ORDER BY <alias> and ORDER BY <ordinal>
        if isinstance(expression, ast.ColumnRef) and expression.table is None:
            for name, expr in zip(select_names, select_exprs):
                if name.lower() == expression.name.lower():
                    return expr
        if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
            ordinal = expression.value
            if not 1 <= ordinal <= len(select_exprs):
                raise PlanningError(f"ORDER BY position {ordinal} out of range")
            return select_exprs[ordinal - 1]
        return expression

    def _evaluate_limit(
        self, limit: Optional[ast.Node]
    ) -> tuple[Optional[int], Optional[str]]:
        """``(count, parameter name)`` -- the name is recorded on the plan
        so the cache can rebind a different LIMIT without re-planning."""
        if limit is None:
            return None, None
        if isinstance(limit, ast.Literal) and isinstance(limit.value, int):
            return _validate_limit(limit.value), None
        if isinstance(limit, ast.Parameter):
            return _validate_limit(bind_parameter(self._params, limit.name)), limit.name
        raise PlanningError("LIMIT must be an integer literal or parameter")

    def _plan_sourceless(self, select: ast.Select) -> PlanNode:
        """``SELECT <expr>, ...`` without FROM -- constant evaluation."""
        if select.group_by or select.having or select.order_by:
            raise PlanningError("GROUP/HAVING/ORDER require a FROM clause")
        expressions: list[ast.Node] = []
        names: list[str] = []
        for index, item in enumerate(select.items):
            if isinstance(item.expression, ast.Star):
                raise PlanningError("'*' requires a FROM clause")
            expressions.append(item.expression)
            names.append(item.alias or f"column{index}")
        constant_source = ScanNode(table="__dual__", binding="__dual__", sargable=[], residual=[])
        constant_source.schema = Schema([])
        node: PlanNode = ProjectNode(child=constant_source, expressions=expressions, names=names)
        limit_count, limit_param = self._evaluate_limit(select.limit)
        if select.where is not None:
            node = FilterNode(child=node, predicate=select.where)
        if limit_count is not None:
            node = LimitNode(child=node, count=limit_count, param=limit_param)
        return node


# --------------------------------------------------------------------------
# Plan-cache support: parameter shapes and rebinding
# --------------------------------------------------------------------------


def _validate_limit(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise PlanningError("LIMIT parameter must bind an integer")
    if value < 0:
        raise PlanningError("LIMIT must be non-negative")
    return value


def param_shapes(params: Optional[Mapping[str, Any]]) -> tuple:
    """A hashable signature of everything about *params* that can change
    plan *structure*: which names are bound, and whether each value is a
    sequence, an int, NULL, or another scalar. Two parameter sets with
    equal shapes always plan to structurally identical trees, so the
    shape is a sound plan-cache key component."""
    if not params:
        return ()
    return tuple(sorted((name, _shape_of(value)) for name, value in params.items()))


def _shape_of(value: Any) -> str:
    if isinstance(value, (list, tuple, set, frozenset)):
        return "seq"
    if value is None:
        return "null"
    if isinstance(value, int) and not isinstance(value, bool):
        return "int"
    return "scalar"


def rebind_plan(node: PlanNode, params: Optional[Mapping[str, Any]]) -> None:
    """Re-evaluate every plan-time parameter binding in place.

    Walks the tree and recomputes sargable IN-values and LIMIT counts from
    their recorded symbolic sources. All other parameter references live
    in residual/projection expressions, which the executors bind at
    execution time anyway. Safe to call repeatedly: every binding is
    recomputed from scratch, so no state leaks between executions.
    """
    if isinstance(node, ScanNode):
        for predicate in node.sargable:
            if predicate.has_params():
                predicate.rebind(params)
        return
    if isinstance(node, JoinNode):
        rebind_plan(node.left, params)
        rebind_plan(node.right, params)
        return
    if isinstance(node, LimitNode):
        if node.param is not None:
            node.count = _validate_limit(bind_parameter(params, node.param))
        rebind_plan(node.child, params)
        return
    if isinstance(node, SortNode):
        if node.limit_param is not None:
            node.limit_hint = _validate_limit(bind_parameter(params, node.limit_param))
        rebind_plan(node.child, params)
        return
    child = getattr(node, "child", None)
    if child is not None:
        rebind_plan(child, params)


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


def _split_conjuncts(expression: Optional[ast.Node]) -> list[ast.Node]:
    if expression is None:
        return []
    if isinstance(expression, ast.BinaryOp) and expression.op == "AND":
        return _split_conjuncts(expression.left) + _split_conjuncts(expression.right)
    return [expression]


def _find_scan(node: PlanNode, binding: str) -> Optional[ScanNode]:
    if isinstance(node, ScanNode):
        return node if node.binding.lower() == binding else None
    if isinstance(node, JoinNode):
        return _find_scan(node.left, binding) or _find_scan(node.right, binding)
    if isinstance(node, FilterNode):
        return _find_scan(node.child, binding)
    return None


def _normalize(node: ast.Node) -> ast.Node:
    """Canonical tree for structural matching: lowercase column refs."""
    if isinstance(node, ast.ColumnRef):
        return ast.ColumnRef(
            name=node.name.lower(), table=node.table.lower() if node.table else None
        )
    if isinstance(node, ast.BinaryOp):
        return ast.BinaryOp(op=node.op, left=_normalize(node.left), right=_normalize(node.right))
    if isinstance(node, ast.UnaryOp):
        return ast.UnaryOp(op=node.op, operand=_normalize(node.operand))
    if isinstance(node, ast.InList):
        return ast.InList(
            operand=_normalize(node.operand),
            items=tuple(_normalize(item) for item in node.items),
            negated=node.negated,
        )
    if isinstance(node, ast.IsNull):
        return ast.IsNull(operand=_normalize(node.operand), negated=node.negated)
    if isinstance(node, ast.Cast):
        return ast.Cast(operand=_normalize(node.operand), type_name=node.type_name)
    if isinstance(node, ast.FunctionCall):
        return ast.FunctionCall(name=node.name.upper(), args=tuple(_normalize(a) for a in node.args))
    if isinstance(node, ast.Aggregate):
        return ast.Aggregate(
            func=node.func,
            argument=_normalize(node.argument) if node.argument is not None else None,
            distinct=node.distinct,
        )
    return node


def _collect_aggregates(expressions: Sequence[ast.Node]) -> list[ast.Aggregate]:
    """Distinct aggregates (by normalised structure) in evaluation order."""
    seen: dict[ast.Node, ast.Aggregate] = {}
    for expression in expressions:
        for node in ast.walk(expression):
            if isinstance(node, ast.Aggregate):
                key = _normalize(node)
                if key not in seen:
                    seen[key] = node
    return list(seen.values())


def _position_of_expression(expression: ast.Node, expressions: list[ast.Node]) -> Optional[int]:
    target = _normalize(expression)
    for position, candidate in enumerate(expressions):
        if _normalize(candidate) == target:
            return position
    return None


class _PostAggregateSubstitution:
    """Rewrites post-aggregation expressions against the GroupNode schema:
    group-key subtrees become ``__k{i}`` references, aggregates become
    ``__a{i}`` references. Any remaining column reference is an error
    (column not functionally dependent on the GROUP BY)."""

    def __init__(
        self,
        normalized_keys: list[ast.Node],
        aggregates: list[ast.Aggregate],
        schema: Schema,
    ) -> None:
        self._key_positions = {key: i for i, key in enumerate(normalized_keys)}
        self._aggregate_positions = {_normalize(agg): i for i, agg in enumerate(aggregates)}
        self._schema = schema

    def apply(self, node: ast.Node) -> ast.Node:
        rewritten = self._rewrite(node)
        for child in ast.walk(rewritten):
            if isinstance(child, ast.ColumnRef) and not child.name.startswith("__"):
                raise PlanningError(
                    f"column {child.display()} must appear in GROUP BY or inside an aggregate"
                )
        return rewritten

    def _rewrite(self, node: ast.Node) -> ast.Node:
        normalized = _normalize(node)
        if normalized in self._key_positions:
            return ast.ColumnRef(name=f"__k{self._key_positions[normalized]}")
        if isinstance(node, ast.Aggregate):
            position = self._aggregate_positions.get(normalized)
            if position is None:
                raise PlanningError(f"aggregate {node.display()} was not collected")
            return ast.ColumnRef(name=f"__a{position}")
        if isinstance(node, ast.BinaryOp):
            return ast.BinaryOp(op=node.op, left=self._rewrite(node.left), right=self._rewrite(node.right))
        if isinstance(node, ast.UnaryOp):
            return ast.UnaryOp(op=node.op, operand=self._rewrite(node.operand))
        if isinstance(node, ast.InList):
            return ast.InList(
                operand=self._rewrite(node.operand),
                items=tuple(self._rewrite(item) for item in node.items),
                negated=node.negated,
            )
        if isinstance(node, ast.IsNull):
            return ast.IsNull(operand=self._rewrite(node.operand), negated=node.negated)
        if isinstance(node, ast.Cast):
            return ast.Cast(operand=self._rewrite(node.operand), type_name=node.type_name)
        if isinstance(node, ast.FunctionCall):
            return ast.FunctionCall(
                name=node.name, args=tuple(self._rewrite(arg) for arg in node.args)
            )
        return node
