"""Tuple-at-a-time executor over the row store.

Implements the physical plan of :mod:`.planner` with classic iterator-style
processing: index or sequential scans, hash joins, hash aggregation, and
stable multi-key sorting. This executor plays PostgreSQL's role in the
paper's row-store experiments.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ...errors import ExecutionError, PlanningError
from ..storage.catalog import Catalog
from ..storage.row_store import RowTable
from ..types import sort_key
from . import ast
from .expressions import compile_expression
from .planner import (
    DistinctNode,
    FilterNode,
    GroupNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SliceColumnsNode,
    SortNode,
    SubqueryNode,
)


@dataclass
class QueryStats:
    """Execution counters used by tests and the cost-model features."""

    rows_scanned: int = 0
    index_scans: int = 0
    seq_scans: int = 0
    rows_joined: int = 0
    groups_built: int = 0
    plan_cache_hit: bool = False
    extra: dict = field(default_factory=dict)


class RowExecutor:
    """Executes a plan tree against :class:`RowTable` storage."""

    def __init__(
        self,
        catalog: Catalog,
        params: Optional[Mapping[str, Any]] = None,
        stats: Optional[QueryStats] = None,
    ) -> None:
        self._catalog = catalog
        self._params = params
        self.stats = stats if stats is not None else QueryStats()

    # -- dispatch ---------------------------------------------------------------

    def execute(self, node: PlanNode) -> list[tuple]:
        if isinstance(node, ScanNode):
            return self._execute_scan(node)
        if isinstance(node, SubqueryNode):
            return self.execute(node.child)
        if isinstance(node, JoinNode):
            return self._execute_join(node)
        if isinstance(node, FilterNode):
            return self._execute_filter(node)
        if isinstance(node, GroupNode):
            return self._execute_group(node)
        if isinstance(node, ProjectNode):
            return self._execute_project(node)
        if isinstance(node, SortNode):
            return self._execute_sort(node)
        if isinstance(node, LimitNode):
            return self.execute(node.child)[: node.count]
        if isinstance(node, DistinctNode):
            return _distinct(self.execute(node.child))
        if isinstance(node, SliceColumnsNode):
            count = node.count
            return [row[:count] for row in self.execute(node.child)]
        raise ExecutionError(f"row executor cannot handle {type(node).__name__}")

    # -- scans ------------------------------------------------------------------

    def _execute_scan(self, node: ScanNode) -> list[tuple]:
        if node.table == "__dual__":
            return [()]
        table = self._catalog.get(node.table)
        if not isinstance(table, RowTable):
            raise ExecutionError(
                f"table {node.table!r} is not row-store backed; "
                "use the matching executor for the database backend"
            )
        indexed = [p for p in node.sargable if table.has_index(p.column)]
        unindexed = [p for p in node.sargable if not table.has_index(p.column)]
        residual_evaluators = [
            compile_expression(predicate, node.schema, self._params)
            for predicate in node.residual
        ]

        if indexed:
            # Drive the scan from the first indexed predicate (BLEND's
            # CellValue/TableId indexes); remaining predicates filter.
            driver = indexed[0]
            positions = table.index_lookup(driver.column, driver.values)
            self.stats.index_scans += 1
            candidates = table.fetch(positions)
            extra_member = indexed[1:] + unindexed
        else:
            self.stats.seq_scans += 1
            candidates = table.scan()
            extra_member = unindexed

        membership_checks = [
            (node.schema.resolve(p.column), _membership_set(p.values)) for p in extra_member
        ]

        rows: list[tuple] = []
        scanned = 0
        for row in candidates:
            scanned += 1
            keep = True
            for position, members in membership_checks:
                value = row[position]
                if value is None or value not in members:
                    keep = False
                    break
            if keep:
                for evaluator in residual_evaluators:
                    if evaluator(row) is not True:
                        keep = False
                        break
            if keep:
                rows.append(row)
        self.stats.rows_scanned += scanned
        return rows

    # -- joins ------------------------------------------------------------------

    def _execute_join(self, node: JoinNode) -> list[tuple]:
        left_rows = self.execute(node.left)
        right_rows = self.execute(node.right)
        left_positions = node.left_key_positions
        right_positions = node.right_key_positions

        residual_evaluators = [
            compile_expression(predicate, node.schema, self._params)
            for predicate in node.residual
        ]

        if not left_positions:
            # Cross join (rare; only residual-driven ON clauses).
            output = []
            for left_row in left_rows:
                for right_row in right_rows:
                    combined = left_row + right_row
                    if all(ev(combined) is True for ev in residual_evaluators):
                        output.append(combined)
            self.stats.rows_joined += len(output)
            return output

        build: dict[tuple, list[tuple]] = {}
        for right_row in right_rows:
            key = tuple(right_row[p] for p in right_positions)
            if any(part is None for part in key):
                continue
            build.setdefault(key, []).append(right_row)

        output: list[tuple] = []
        right_width = len(node.right.schema)
        null_right = (None,) * right_width
        for left_row in left_rows:
            key = tuple(left_row[p] for p in left_positions)
            matches = build.get(key) if not any(part is None for part in key) else None
            if matches:
                for right_row in matches:
                    combined = left_row + right_row
                    if all(ev(combined) is True for ev in residual_evaluators):
                        output.append(combined)
            elif node.join_type == "left":
                output.append(left_row + null_right)
        self.stats.rows_joined += len(output)
        return output

    # -- filter / project ---------------------------------------------------------

    def _execute_filter(self, node: FilterNode) -> list[tuple]:
        rows = self.execute(node.child)
        evaluator = compile_expression(node.predicate, node.child.schema, self._params)
        return [row for row in rows if evaluator(row) is True]

    def _execute_project(self, node: ProjectNode) -> list[tuple]:
        rows = self.execute(node.child)
        evaluators = [
            compile_expression(expression, node.child.schema, self._params)
            for expression in node.expressions
        ]
        return [tuple(evaluator(row) for evaluator in evaluators) for row in rows]

    # -- aggregation ---------------------------------------------------------------

    def _execute_group(self, node: GroupNode) -> list[tuple]:
        rows = self.execute(node.child)
        key_evaluators = [
            compile_expression(key, node.child.schema, self._params) for key in node.keys
        ]
        argument_evaluators = [
            compile_expression(agg.argument, node.child.schema, self._params)
            if agg.argument is not None
            else None
            for agg in node.aggregates
        ]

        groups: dict[tuple, list[_Accumulator]] = {}
        for row in rows:
            key = tuple(evaluator(row) for evaluator in key_evaluators)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [_make_accumulator(agg) for agg in node.aggregates]
                groups[key] = accumulators
            for accumulator, arg_eval in zip(accumulators, argument_evaluators):
                accumulator.add(arg_eval(row) if arg_eval is not None else 1)

        if not groups and not node.keys:
            # Global aggregate over an empty input still yields one row.
            groups[()] = [_make_accumulator(agg) for agg in node.aggregates]

        self.stats.groups_built += len(groups)
        return [
            key + tuple(acc.result() for acc in accumulators)
            for key, accumulators in groups.items()
        ]

    # -- sorting ---------------------------------------------------------------------

    def _execute_sort(self, node: SortNode) -> list[tuple]:
        rows = self.execute(node.child)
        positions = node.key_positions
        descending = node.descending

        if node.limit_hint is not None and len(positions) == 1 and node.limit_hint < len(rows):
            position = positions[0]
            if descending[0]:
                return heapq.nsmallest(
                    node.limit_hint, rows, key=lambda row: _descending_key(row[position])
                )
            return heapq.nsmallest(node.limit_hint, rows, key=lambda row: sort_key(row[position]))

        # Repeated stable sorts, least-significant key first.
        for position, desc in reversed(list(zip(positions, descending))):
            if desc:
                rows = sorted(rows, key=lambda row, p=position: _descending_key(row[p]))
            else:
                rows = sorted(rows, key=lambda row, p=position: sort_key(row[p]))
        return rows


# --------------------------------------------------------------------------
# Aggregate accumulators
# --------------------------------------------------------------------------


class _Accumulator:
    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class _CountStar(_Accumulator):
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        self.count += 1

    def result(self) -> Any:
        return self.count


class _Count(_Accumulator):
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def result(self) -> Any:
        return self.count


class _CountDistinct(_Accumulator):
    __slots__ = ("seen",)

    def __init__(self) -> None:
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if value is not None:
            self.seen.add(value)

    def result(self) -> Any:
        return len(self.seen)


class _Sum(_Accumulator):
    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            if isinstance(value, bool):
                value = int(value)
            self.total += value
            self.count += 1

    def result(self) -> Any:
        return self.total if self.count else None


class _SumDistinct(_Sum):
    __slots__ = ("seen",)

    def __init__(self) -> None:
        super().__init__()
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if value is not None and value not in self.seen:
            self.seen.add(value)
            super().add(value)


class _Avg(_Sum):
    def result(self) -> Any:
        return self.total / self.count if self.count else None


class _Min(_Accumulator):
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is not None and (self.best is None or value < self.best):
            self.best = value

    def result(self) -> Any:
        return self.best


class _Max(_Accumulator):
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is not None and (self.best is None or value > self.best):
            self.best = value

    def result(self) -> Any:
        return self.best


def _make_accumulator(aggregate: ast.Aggregate) -> _Accumulator:
    func = aggregate.func
    if func == "COUNT":
        if aggregate.argument is None:
            return _CountStar()
        if aggregate.distinct:
            return _CountDistinct()
        return _Count()
    if func == "SUM":
        return _SumDistinct() if aggregate.distinct else _Sum()
    if func == "AVG":
        return _Avg()
    if func == "MIN":
        return _Min()
    if func == "MAX":
        return _Max()
    raise PlanningError(f"unsupported aggregate: {func}")


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


def _membership_set(values: list) -> frozenset:
    try:
        return frozenset(values)
    except TypeError as exc:  # unhashable -- cannot happen with SQL scalars
        raise ExecutionError(f"unhashable IN-list value: {exc}") from exc


def _distinct(rows: list[tuple]) -> list[tuple]:
    seen: set = set()
    output: list[tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            output.append(row)
    return output


class _DescendingKey:
    """Wrap a sort key so ascending comparison yields descending order,
    keeping NULLs last in both directions (PostgreSQL default)."""

    __slots__ = ("is_null", "key")

    def __init__(self, value: Any) -> None:
        self.is_null = value is None
        self.key = sort_key(value)

    def __lt__(self, other: "_DescendingKey") -> bool:
        if self.is_null != other.is_null:
            return other.is_null  # non-null sorts first in DESC too
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _DescendingKey) and self.key == other.key


def _descending_key(value: Any) -> _DescendingKey:
    return _DescendingKey(value)
