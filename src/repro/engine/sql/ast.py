"""Abstract syntax tree for the engine's SQL subset.

The grammar intentionally covers exactly what BLEND's seekers and the
benchmark suite emit (see Listings 1-3 of the paper): single-table
SELECTs, subqueries in FROM, INNER JOIN with conjunctive equality ON
clauses, WHERE with IN / comparison / NULL predicates, GROUP BY,
aggregate expressions (COUNT/COUNT DISTINCT/SUM/AVG/MIN/MAX), ORDER BY
over arbitrary expressions, LIMIT, and named parameters (``:name``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class Node:
    """Marker base class for AST nodes."""

    __slots__ = ()


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal(Node):
    """A constant: number, string, boolean, or NULL."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(Node):
    """A (possibly qualified) column reference, e.g. ``keys.TableId``."""

    name: str
    table: Optional[str] = None

    def display(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Star(Node):
    """``*`` or ``alias.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


@dataclass(frozen=True)
class Parameter(Node):
    """A named query parameter ``:name`` bound at execution time.

    Parameters may bind scalars (comparisons) or sequences (IN lists) --
    the latter is how BLEND injects large query-value sets and the
    optimizer injects intermediate-result TableId lists without re-parsing
    thousands of literals.
    """

    name: str


@dataclass(frozen=True)
class BinaryOp(Node):
    """Binary operator: arithmetic (+,-,*,/,%), comparison (=,<>,<,...),
    or logical (AND, OR)."""

    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class UnaryOp(Node):
    """Unary operator: NOT or numeric negation ``-``."""

    op: str
    operand: Node


@dataclass(frozen=True)
class InList(Node):
    """``expr [NOT] IN (items...)`` where items are literals/parameters."""

    operand: Node
    items: tuple[Node, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Node):
    """``expr IS [NOT] NULL``."""

    operand: Node
    negated: bool = False


@dataclass(frozen=True)
class Cast(Node):
    """PostgreSQL-style ``expr::type`` cast (int / float / text)."""

    operand: Node
    type_name: str


@dataclass(frozen=True)
class FunctionCall(Node):
    """Scalar function call (ABS, LENGTH, LOWER, UPPER, COALESCE, ...)."""

    name: str
    args: tuple[Node, ...]


@dataclass(frozen=True)
class Aggregate(Node):
    """Aggregate function: COUNT/SUM/AVG/MIN/MAX.

    ``argument`` is ``None`` only for ``COUNT(*)``.
    """

    func: str
    argument: Optional[Node]
    distinct: bool = False

    def display(self) -> str:
        inner = "*" if self.argument is None else "<expr>"
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.func}({prefix}{inner})"


# --------------------------------------------------------------------------
# Relations (FROM clause)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef(Node):
    """Base-table reference with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(Node):
    """Derived table: ``(SELECT ...) [AS] alias``."""

    query: "Select"
    alias: str


@dataclass(frozen=True)
class Join(Node):
    """``left INNER JOIN right ON condition``."""

    left: Node
    right: Node
    condition: Node
    join_type: str = "inner"


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    """One entry of the select list."""

    expression: Node
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem(Node):
    """One ORDER BY key."""

    expression: Node
    descending: bool = False


@dataclass(frozen=True)
class Select(Node):
    """A full SELECT statement."""

    items: tuple[SelectItem, ...]
    source: Optional[Node] = None
    where: Optional[Node] = None
    group_by: tuple[Node, ...] = field(default=())
    having: Optional[Node] = None
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: Optional[Node] = None
    distinct: bool = False


def walk(node: Node):
    """Yield *node* and all AST descendants, depth first.

    Used by the planner for aggregate discovery and parameter collection.
    """
    yield node
    if isinstance(node, BinaryOp):
        yield from walk(node.left)
        yield from walk(node.right)
    elif isinstance(node, UnaryOp):
        yield from walk(node.operand)
    elif isinstance(node, InList):
        yield from walk(node.operand)
        for item in node.items:
            yield from walk(item)
    elif isinstance(node, IsNull):
        yield from walk(node.operand)
    elif isinstance(node, Cast):
        yield from walk(node.operand)
    elif isinstance(node, FunctionCall):
        for arg in node.args:
            yield from walk(arg)
    elif isinstance(node, Aggregate):
        if node.argument is not None:
            yield from walk(node.argument)
    elif isinstance(node, SelectItem):
        yield from walk(node.expression)
    elif isinstance(node, OrderItem):
        yield from walk(node.expression)
    elif isinstance(node, Join):
        yield from walk(node.left)
        yield from walk(node.right)
        yield from walk(node.condition)
    elif isinstance(node, SubqueryRef):
        yield from walk(node.query)
    elif isinstance(node, Select):
        for item in node.items:
            yield from walk(item)
        if node.source is not None:
            yield from walk(node.source)
        if node.where is not None:
            yield from walk(node.where)
        for expr in node.group_by:
            yield from walk(expr)
        if node.having is not None:
            yield from walk(node.having)
        for item in node.order_by:
            yield from walk(item)
        if node.limit is not None:
            yield from walk(node.limit)


def contains_aggregate(node: Node) -> bool:
    """True when the expression tree contains an :class:`Aggregate`."""
    return any(isinstance(child, Aggregate) for child in walk(node))
