"""Recursive-descent parser producing the AST in :mod:`.ast`.

Operator precedence (low to high):
    OR < AND < NOT < comparison/IN/IS/BETWEEN/LIKE < additive <
    multiplicative < unary minus < ``::`` cast < primary.
"""

from __future__ import annotations

from ...errors import SqlSyntaxError
from . import ast
from .lexer import Token, tokenize

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


def parse(sql: str) -> ast.Select:
    """Parse one SELECT statement (optionally ``;``-terminated)."""
    return Parser(tokenize(sql)).parse_statement()


class Parser:
    """Single-statement recursive-descent SQL parser."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.value in keywords

    def _match_keyword(self, *keywords: str) -> bool:
        if self._check_keyword(*keywords):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if token.kind == "keyword" and token.value == keyword:
            return self._advance()
        raise SqlSyntaxError(f"expected {keyword}, found {token.value!r}", position=token.position)

    def _check_operator(self, *ops: str) -> bool:
        token = self._peek()
        return token.kind == "operator" and token.value in ops

    def _match_operator(self, *ops: str) -> bool:
        if self._check_operator(*ops):
            self._advance()
            return True
        return False

    def _expect_operator(self, op: str) -> Token:
        token = self._peek()
        if token.kind == "operator" and token.value == op:
            return self._advance()
        raise SqlSyntaxError(f"expected {op!r}, found {token.value!r}", position=token.position)

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> ast.Select:
        select = self._parse_select()
        self._match_operator(";")
        tail = self._peek()
        if tail.kind != "eof":
            raise SqlSyntaxError(f"unexpected trailing input {tail.value!r}", position=tail.position)
        return select

    def _parse_select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = self._match_keyword("DISTINCT")
        items = [self._parse_select_item()]
        while self._match_operator(","):
            items.append(self._parse_select_item())

        source = None
        if self._match_keyword("FROM"):
            source = self._parse_from()

        where = None
        if self._match_keyword("WHERE"):
            where = self._parse_expression()

        group_by: tuple[ast.Node, ...] = ()
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            keys = [self._parse_expression()]
            while self._match_operator(","):
                keys.append(self._parse_expression())
            group_by = tuple(keys)

        having = None
        if self._match_keyword("HAVING"):
            having = self._parse_expression()

        order_by: tuple[ast.OrderItem, ...] = ()
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            orders = [self._parse_order_item()]
            while self._match_operator(","):
                orders.append(self._parse_order_item())
            order_by = tuple(orders)

        limit = None
        if self._match_keyword("LIMIT"):
            limit = self._parse_expression()

        return ast.Select(
            items=tuple(items),
            source=source,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.kind == "operator" and token.value == "*":
            self._advance()
            return ast.SelectItem(expression=ast.Star())
        # alias.* form
        if (
            token.kind == "identifier"
            and self._peek(1).kind == "operator"
            and self._peek(1).value == "."
            and self._peek(2).kind == "operator"
            and self._peek(2).value == "*"
        ):
            self._advance()
            self._advance()
            self._advance()
            return ast.SelectItem(expression=ast.Star(table=token.value))
        expression = self._parse_expression()
        alias = None
        if self._match_keyword("AS"):
            alias_token = self._advance()
            if alias_token.kind not in ("identifier", "string"):
                raise SqlSyntaxError("expected alias name after AS", position=alias_token.position)
            alias = alias_token.value
        elif self._peek().kind == "identifier":
            alias = self._advance().value
        return ast.SelectItem(expression=expression, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self._parse_expression()
        descending = False
        if self._match_keyword("DESC"):
            descending = True
        else:
            self._match_keyword("ASC")
        return ast.OrderItem(expression=expression, descending=descending)

    # -- FROM clause ----------------------------------------------------------

    def _parse_from(self) -> ast.Node:
        relation = self._parse_relation()
        while True:
            join_type = None
            if self._check_keyword("INNER") or self._check_keyword("JOIN"):
                self._match_keyword("INNER")
                join_type = "inner"
            elif self._check_keyword("LEFT"):
                self._advance()
                join_type = "left"
            else:
                break
            self._expect_keyword("JOIN")
            right = self._parse_relation()
            self._expect_keyword("ON")
            condition = self._parse_expression()
            relation = ast.Join(left=relation, right=right, condition=condition, join_type=join_type)
        return relation

    def _parse_relation(self) -> ast.Node:
        if self._check_operator("("):
            self._advance()
            if self._check_keyword("SELECT"):
                subquery = self._parse_select()
                self._expect_operator(")")
                self._match_keyword("AS")
                alias_token = self._advance()
                if alias_token.kind != "identifier":
                    raise SqlSyntaxError("derived table requires an alias", position=alias_token.position)
                return ast.SubqueryRef(query=subquery, alias=alias_token.value)
            # Parenthesised join tree.
            relation = self._parse_from()
            self._expect_operator(")")
            return relation
        token = self._advance()
        if token.kind != "identifier":
            raise SqlSyntaxError(f"expected table name, found {token.value!r}", position=token.position)
        alias = None
        if self._match_keyword("AS"):
            alias_token = self._advance()
            if alias_token.kind != "identifier":
                raise SqlSyntaxError("expected alias after AS", position=alias_token.position)
            alias = alias_token.value
        elif self._peek().kind == "identifier":
            alias = self._advance().value
        return ast.TableRef(name=token.value, alias=alias)

    # -- expressions ------------------------------------------------------------

    def _parse_expression(self) -> ast.Node:
        return self._parse_or()

    def _parse_or(self) -> ast.Node:
        left = self._parse_and()
        while self._match_keyword("OR"):
            right = self._parse_and()
            left = ast.BinaryOp(op="OR", left=left, right=right)
        return left

    def _parse_and(self) -> ast.Node:
        left = self._parse_not()
        while self._match_keyword("AND"):
            right = self._parse_not()
            left = ast.BinaryOp(op="AND", left=left, right=right)
        return left

    def _parse_not(self) -> ast.Node:
        if self._match_keyword("NOT"):
            return ast.UnaryOp(op="NOT", operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Node:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "operator" and token.value in _COMPARISONS:
            self._advance()
            right = self._parse_additive()
            op = "<>" if token.value == "!=" else token.value
            return ast.BinaryOp(op=op, left=left, right=right)
        negated = False
        if self._check_keyword("NOT") and self._peek(1).kind == "keyword" and self._peek(1).value in ("IN", "BETWEEN", "LIKE"):
            self._advance()
            negated = True
        if self._match_keyword("IN"):
            return self._parse_in_tail(left, negated)
        if self._match_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            between = ast.BinaryOp(
                op="AND",
                left=ast.BinaryOp(op=">=", left=left, right=low),
                right=ast.BinaryOp(op="<=", left=left, right=high),
            )
            if negated:
                return ast.UnaryOp(op="NOT", operand=between)
            return between
        if self._match_keyword("LIKE"):
            pattern = self._parse_additive()
            call = ast.FunctionCall(name="LIKE", args=(left, pattern))
            if negated:
                return ast.UnaryOp(op="NOT", operand=call)
            return call
        if negated:
            token = self._peek()
            raise SqlSyntaxError("expected IN, BETWEEN, or LIKE after NOT", position=token.position)
        if self._match_keyword("IS"):
            is_negated = self._match_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(operand=left, negated=is_negated)
        return left

    def _parse_in_tail(self, operand: ast.Node, negated: bool) -> ast.Node:
        # Either a parenthesised item list or a bare parameter: IN :values
        if self._peek().kind == "parameter":
            param = self._advance()
            return ast.InList(operand=operand, items=(ast.Parameter(param.value),), negated=negated)
        self._expect_operator("(")
        items: list[ast.Node] = []
        if not self._check_operator(")"):
            items.append(self._parse_additive())
            while self._match_operator(","):
                items.append(self._parse_additive())
        self._expect_operator(")")
        return ast.InList(operand=operand, items=tuple(items), negated=negated)

    def _parse_additive(self) -> ast.Node:
        left = self._parse_multiplicative()
        while self._check_operator("+", "-"):
            op = self._advance().value
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_multiplicative(self) -> ast.Node:
        left = self._parse_unary()
        while self._check_operator("*", "/", "%"):
            op = self._advance().value
            right = self._parse_unary()
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Node:
        if self._match_operator("-"):
            return ast.UnaryOp(op="-", operand=self._parse_unary())
        if self._match_operator("+"):
            return self._parse_unary()
        return self._parse_cast()

    def _parse_cast(self) -> ast.Node:
        expression = self._parse_primary()
        while self._match_operator("::"):
            type_token = self._advance()
            if type_token.kind != "identifier":
                raise SqlSyntaxError("expected type name after '::'", position=type_token.position)
            expression = ast.Cast(operand=expression, type_name=type_token.value.lower())
        return expression

    def _parse_primary(self) -> ast.Node:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.kind == "string":
            self._advance()
            return ast.Literal(token.value)
        if token.kind == "parameter":
            self._advance()
            return ast.Parameter(token.value)
        if token.kind == "keyword":
            if token.value == "NULL":
                self._advance()
                return ast.Literal(None)
            if token.value == "TRUE":
                self._advance()
                return ast.Literal(True)
            if token.value == "FALSE":
                self._advance()
                return ast.Literal(False)
            if token.value in _AGGREGATES:
                return self._parse_aggregate()
        if token.kind == "operator" and token.value == "(":
            self._advance()
            if self._check_keyword("SELECT"):
                raise SqlSyntaxError(
                    "scalar subqueries are not supported; use a parameter", position=token.position
                )
            expression = self._parse_expression()
            self._expect_operator(")")
            return expression
        if token.kind == "identifier":
            return self._parse_identifier_expression()
        raise SqlSyntaxError(f"unexpected token {token.value!r}", position=token.position)

    def _parse_aggregate(self) -> ast.Node:
        func_token = self._advance()
        func = func_token.value
        self._expect_operator("(")
        if func == "COUNT" and self._check_operator("*"):
            self._advance()
            self._expect_operator(")")
            return ast.Aggregate(func="COUNT", argument=None)
        distinct = self._match_keyword("DISTINCT")
        argument = self._parse_expression()
        self._expect_operator(")")
        return ast.Aggregate(func=func, argument=argument, distinct=distinct)

    def _parse_identifier_expression(self) -> ast.Node:
        name_token = self._advance()
        # Function call?
        if self._check_operator("(") :
            self._advance()
            args: list[ast.Node] = []
            if not self._check_operator(")"):
                args.append(self._parse_expression())
                while self._match_operator(","):
                    args.append(self._parse_expression())
            self._expect_operator(")")
            return ast.FunctionCall(name=name_token.value.upper(), args=tuple(args))
        # Qualified column?
        if self._check_operator(".") :
            self._advance()
            column_token = self._advance()
            if column_token.kind not in ("identifier", "keyword"):
                raise SqlSyntaxError(
                    f"expected column name after '.', found {column_token.value!r}",
                    position=column_token.position,
                )
            return ast.ColumnRef(name=column_token.value, table=name_token.value)
        return ast.ColumnRef(name=name_token.value)
