"""Row-wise expression compiler.

Compiles an AST expression against a :class:`~.schema.Schema` into a Python
closure ``row -> value`` implementing SQL three-valued semantics. Parameters
are substituted at compile time (queries are re-compiled per execution,
which is cheap relative to scan cost and keeps closures allocation-free).

The column executor has its own vectorised compiler in
:mod:`repro.engine.sql.vector_expressions`; this module is the reference
semantics both must agree on (property-tested in the test suite).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping, Optional, Sequence

from ...errors import PlanningError
from ..types import (
    sql_and,
    sql_cast_float,
    sql_cast_int,
    sql_compare,
    sql_equals,
    sql_not,
    sql_or,
)
from . import ast
from .schema import Schema

RowEvaluator = Callable[[Sequence[Any]], Any]


def bind_parameter(params: Optional[Mapping[str, Any]], name: str) -> Any:
    """Fetch a named parameter, raising a planning error when unbound."""
    if params is None or name not in params:
        raise PlanningError(f"unbound query parameter: :{name}")
    return params[name]


def compile_expression(
    node: ast.Node,
    schema: Schema,
    params: Optional[Mapping[str, Any]] = None,
) -> RowEvaluator:
    """Compile *node* into a ``row -> value`` closure."""
    if isinstance(node, ast.Literal):
        value = node.value
        return lambda row: value
    if isinstance(node, ast.Parameter):
        value = bind_parameter(params, node.name)
        if isinstance(value, (list, tuple, set, frozenset)):
            raise PlanningError(
                f"parameter :{node.name} binds a sequence and may only be used in an IN list"
            )
        return lambda row: value
    if isinstance(node, ast.ColumnRef):
        position = schema.resolve(node.name, node.table)
        return lambda row: row[position]
    if isinstance(node, ast.BinaryOp):
        return _compile_binary(node, schema, params)
    if isinstance(node, ast.UnaryOp):
        operand = compile_expression(node.operand, schema, params)
        if node.op == "NOT":
            return lambda row: sql_not(operand(row))
        if node.op == "-":
            def negate(row: Sequence[Any]) -> Any:
                value = operand(row)
                return None if value is None else -value

            return negate
        raise PlanningError(f"unknown unary operator: {node.op}")
    if isinstance(node, ast.InList):
        return _compile_in_list(node, schema, params)
    if isinstance(node, ast.IsNull):
        operand = compile_expression(node.operand, schema, params)
        if node.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(node, ast.Cast):
        operand = compile_expression(node.operand, schema, params)
        if node.type_name in ("int", "integer", "bigint"):
            return lambda row: sql_cast_int(operand(row))
        if node.type_name in ("float", "real", "double", "numeric"):
            return lambda row: sql_cast_float(operand(row))
        if node.type_name in ("text", "varchar", "nvarchar"):
            def cast_text(row: Sequence[Any]) -> Any:
                value = operand(row)
                return None if value is None else str(value)

            return cast_text
        raise PlanningError(f"unsupported cast target: {node.type_name}")
    if isinstance(node, ast.FunctionCall):
        return _compile_function(node, schema, params)
    if isinstance(node, ast.Aggregate):
        raise PlanningError(
            f"aggregate {node.display()} used outside GROUP BY context"
        )
    if isinstance(node, ast.Star):
        raise PlanningError("'*' is only valid in a select list or COUNT(*)")
    raise PlanningError(f"cannot compile expression node: {type(node).__name__}")


def _compile_binary(
    node: ast.BinaryOp, schema: Schema, params: Optional[Mapping[str, Any]]
) -> RowEvaluator:
    left = compile_expression(node.left, schema, params)
    right = compile_expression(node.right, schema, params)
    op = node.op
    if op == "AND":
        return lambda row: sql_and(left(row), right(row))
    if op == "OR":
        return lambda row: sql_or(left(row), right(row))
    if op == "=":
        return lambda row: sql_equals(left(row), right(row))
    if op == "<>":
        return lambda row: sql_not(sql_equals(left(row), right(row)))
    if op in ("<", "<=", ">", ">="):
        def compare(row: Sequence[Any], _op: str = op) -> Any:
            ordering = sql_compare(left(row), right(row))
            if ordering is None:
                return None
            if _op == "<":
                return ordering < 0
            if _op == "<=":
                return ordering <= 0
            if _op == ">":
                return ordering > 0
            return ordering >= 0

        return compare
    if op in ("+", "-", "*", "/", "%"):
        def arithmetic(row: Sequence[Any], _op: str = op) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            if isinstance(lhs, bool):
                lhs = int(lhs)
            if isinstance(rhs, bool):
                rhs = int(rhs)
            if _op == "+":
                return lhs + rhs
            if _op == "-":
                return lhs - rhs
            if _op == "*":
                return lhs * rhs
            if _op == "/":
                if rhs == 0:
                    return None  # SQL engines raise; NULL keeps ranking total
                result = lhs / rhs
                return result
            if rhs == 0:
                return None
            return lhs % rhs

        return arithmetic
    raise PlanningError(f"unknown binary operator: {op}")


def _compile_in_list(
    node: ast.InList, schema: Schema, params: Optional[Mapping[str, Any]]
) -> RowEvaluator:
    operand = compile_expression(node.operand, schema, params)
    values: list[Any] = []
    contains_null = False
    for item in node.items:
        if isinstance(item, ast.Literal):
            if item.value is None:
                contains_null = True
            else:
                values.append(item.value)
        elif isinstance(item, ast.Parameter):
            bound = bind_parameter(params, item.name)
            if isinstance(bound, (list, tuple, set, frozenset)):
                for element in bound:
                    if element is None:
                        contains_null = True
                    else:
                        values.append(element)
            elif bound is None:
                contains_null = True
            else:
                values.append(bound)
        else:
            raise PlanningError("IN lists may only contain literals and parameters")
    try:
        membership: Any = frozenset(values)
    except TypeError:
        membership = tuple(values)
    negated = node.negated

    def evaluate(row: Sequence[Any]) -> Any:
        value = operand(row)
        if value is None:
            return None
        found = value in membership
        if found:
            return not negated
        if contains_null:
            return None
        return negated

    return evaluate


def _compile_function(
    node: ast.FunctionCall, schema: Schema, params: Optional[Mapping[str, Any]]
) -> RowEvaluator:
    args = [compile_expression(arg, schema, params) for arg in node.args]
    name = node.name.upper()

    def require_arity(expected: int) -> None:
        if len(args) != expected:
            raise PlanningError(f"{name} expects {expected} argument(s), got {len(args)}")

    if name == "ABS":
        require_arity(1)
        arg = args[0]

        def absolute(row: Sequence[Any]) -> Any:
            value = arg(row)
            return None if value is None else abs(value)

        return absolute
    if name == "LENGTH":
        require_arity(1)
        arg = args[0]

        def length(row: Sequence[Any]) -> Any:
            value = arg(row)
            return None if value is None else len(str(value))

        return length
    if name == "LOWER":
        require_arity(1)
        arg = args[0]

        def lower(row: Sequence[Any]) -> Any:
            value = arg(row)
            return None if value is None else str(value).lower()

        return lower
    if name == "UPPER":
        require_arity(1)
        arg = args[0]

        def upper(row: Sequence[Any]) -> Any:
            value = arg(row)
            return None if value is None else str(value).upper()

        return upper
    if name == "COALESCE":
        if not args:
            raise PlanningError("COALESCE expects at least one argument")

        def coalesce(row: Sequence[Any]) -> Any:
            for arg in args:
                value = arg(row)
                if value is not None:
                    return value
            return None

        return coalesce
    if name == "SQRT":
        require_arity(1)
        arg = args[0]

        def sqrt(row: Sequence[Any]) -> Any:
            value = arg(row)
            if value is None:
                return None
            if value < 0:
                return None
            return math.sqrt(value)

        return sqrt
    if name == "LIKE":
        require_arity(2)
        operand, pattern = args

        def like(row: Sequence[Any]) -> Any:
            value = operand(row)
            pat = pattern(row)
            if value is None or pat is None:
                return None
            return _like_match(str(value), str(pat))

        return like
    raise PlanningError(f"unknown function: {name}")


def _like_match(value: str, pattern: str) -> bool:
    """Evaluate SQL LIKE with ``%`` and ``_`` wildcards (no escapes)."""
    # Dynamic-programming match; pattern alphabets are tiny in practice.
    import re

    regex_parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            regex_parts.append(".*")
        elif ch == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(ch))
    return re.fullmatch("".join(regex_parts), value) is not None
