"""Column-resolution schema shared by the planner and both executors.

A :class:`Schema` describes the columns of an intermediate relation as an
ordered list of ``(binding, name)`` pairs, where *binding* is the table
alias the column is visible under (``None`` for computed columns).
Resolution is case-insensitive, as in standard SQL.
"""

from __future__ import annotations

from typing import Optional

from ...errors import PlanningError


class Schema:
    """Ordered, alias-aware column list with case-insensitive lookup."""

    __slots__ = ("columns", "_by_name")

    def __init__(self, columns: list[tuple[Optional[str], str]]) -> None:
        # columns: list of (binding, display_name)
        self.columns = list(columns)
        self._by_name: dict[str, list[int]] = {}
        for position, (_, name) in enumerate(self.columns):
            self._by_name.setdefault(name.lower(), []).append(position)

    def __len__(self) -> int:
        return len(self.columns)

    def names(self) -> list[str]:
        """Display names in order (used for result-set headers)."""
        return [name for _, name in self.columns]

    def resolve(self, name: str, table: Optional[str] = None) -> int:
        """Return the position of column *name* (optionally qualified by
        *table*). Raises :class:`PlanningError` on unknown or ambiguous
        references."""
        candidates = self._by_name.get(name.lower(), [])
        if table is not None:
            table_lower = table.lower()
            matches = [
                position
                for position in candidates
                if self.columns[position][0] is not None and self.columns[position][0].lower() == table_lower
            ]
        else:
            matches = candidates
        if not matches:
            qualified = f"{table}.{name}" if table else name
            raise PlanningError(f"unknown column: {qualified}")
        if len(matches) > 1:
            qualified = f"{table}.{name}" if table else name
            raise PlanningError(f"ambiguous column reference: {qualified}")
        return matches[0]

    def positions_for_binding(self, binding: str) -> list[int]:
        """All column positions belonging to table alias *binding*."""
        binding_lower = binding.lower()
        positions = [
            position
            for position, (table, _) in enumerate(self.columns)
            if table is not None and table.lower() == binding_lower
        ]
        if not positions:
            raise PlanningError(f"unknown table alias in select list: {binding}")
        return positions

    def rebind(self, binding: str) -> "Schema":
        """A copy of this schema with every column re-qualified under a new
        alias -- used when a subquery gets a derived-table alias."""
        return Schema([(binding, name) for _, name in self.columns])

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join output: left columns then right columns."""
        return Schema(self.columns + other.columns)
