"""Data-lake container: an ordered corpus of tables with stable ids.

Table ids are assigned on insertion order and are what the ``AllTables``
index, seekers, and result sets refer to (the paper's ``TableId``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from ..errors import LakeError
from .csvio import read_table, write_table
from .table import Table


@dataclass(frozen=True)
class LakeStats:
    """Corpus-level statistics (the rows of the paper's Table II)."""

    name: str
    num_tables: int
    num_columns: int
    num_rows: int
    num_cells: int


@dataclass(frozen=True)
class LakeShard:
    """A contiguous, picklable slice of a lake's tables.

    The unit of work of the sharded ``AllTables`` build: table ids stay
    implicit (``first_table_id + offset``), and :class:`Table` holds only
    plain Python lists/tuples (plus its cached type-inference flags), so
    a shard crosses a process boundary with one pickle round-trip and no
    lake-level state.
    """

    first_table_id: int
    tables: tuple[Table, ...]

    @property
    def num_cells(self) -> int:
        return sum(table.num_rows * table.num_columns for table in self.tables)


class DataLake:
    """An ordered collection of :class:`Table` with id <-> name mapping."""

    def __init__(self, name: str = "lake", tables: Optional[Iterable[Table]] = None) -> None:
        self.name = name
        self._tables: list[Table] = []
        self._id_by_name: dict[str, int] = {}
        if tables is not None:
            for table in tables:
                self.add(table)

    # -- corpus management ---------------------------------------------------------

    def add(self, table: Table) -> int:
        """Add a table; returns its assigned table id."""
        if table.name in self._id_by_name:
            raise LakeError(f"lake already contains a table named {table.name!r}")
        table_id = len(self._tables)
        self._tables.append(table)
        self._id_by_name[table.name] = table_id
        return table_id

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._id_by_name

    def table_ids(self) -> range:
        return range(len(self._tables))

    def by_id(self, table_id: int) -> Table:
        if not 0 <= table_id < len(self._tables):
            raise LakeError(f"unknown table id: {table_id}")
        return self._tables[table_id]

    def by_name(self, name: str) -> Table:
        try:
            return self._tables[self._id_by_name[name]]
        except KeyError:
            raise LakeError(f"unknown table name: {name!r}") from None

    def id_of(self, name: str) -> int:
        try:
            return self._id_by_name[name]
        except KeyError:
            raise LakeError(f"unknown table name: {name!r}") from None

    def name_of(self, table_id: int) -> str:
        return self.by_id(table_id).name

    def gather_rows(self, table_id: int, row_ids: Iterable[int]) -> tuple[list[int], list[tuple]]:
        """Bulk row access for one table: ``(kept_row_ids, rows)``.

        The batched MC validation path fetches all surviving candidate
        rows of a table in one call instead of re-resolving the table per
        candidate. Row ids beyond the table's current length are dropped
        (the index may reference rows of a table that has since shrunk) --
        mirroring the per-row bounds check of the scalar seeker path.
        """
        rows = self.by_id(table_id).rows
        limit = len(rows)
        kept: list[int] = []
        gathered: list[tuple] = []
        for row_id in row_ids:
            row_id = int(row_id)
            if 0 <= row_id < limit:
                kept.append(row_id)
                gathered.append(rows[row_id])
        return kept, gathered

    # -- sharding ---------------------------------------------------------------------

    def shard(self, start: int, stop: int) -> LakeShard:
        """The tables with ids in ``[start, stop)`` as one picklable shard."""
        if not 0 <= start <= stop <= len(self._tables):
            raise LakeError(
                f"invalid shard range [{start}, {stop}) for a lake of "
                f"{len(self._tables)} tables"
            )
        return LakeShard(start, tuple(self._tables[start:stop]))

    def shard_plan(self, num_shards: int) -> list[LakeShard]:
        """Partition the lake into up to *num_shards* contiguous shards of
        roughly equal **cell** count (tables vary by orders of magnitude,
        so balancing by table count would skew worker runtimes).

        Contiguity keeps the merge deterministic and trivial: emitting
        shard outputs in shard order reproduces the serial build's
        table-id emission order exactly. Greedy splitting against the
        ideal per-shard quota; every shard holds at least one table, and
        fewer shards than requested are returned when the lake is small.
        """
        if num_shards < 1:
            raise LakeError(f"num_shards must be >= 1, got {num_shards}")
        num_tables = len(self._tables)
        if num_tables == 0:
            return []
        cells = [table.num_rows * table.num_columns for table in self._tables]
        total = sum(cells)
        shards: list[LakeShard] = []
        start = 0
        accumulated = 0
        for table_id, table_cells in enumerate(cells):
            accumulated += table_cells
            remaining_shards = num_shards - len(shards)
            remaining_tables = num_tables - table_id - 1
            if remaining_shards <= 1:
                continue
            quota = total * (len(shards) + 1) / num_shards
            if accumulated >= quota or remaining_tables < remaining_shards - 1:
                shards.append(self.shard(start, table_id + 1))
                start = table_id + 1
        if start < num_tables:
            shards.append(self.shard(start, num_tables))
        return shards

    # -- statistics -------------------------------------------------------------------

    def stats(self) -> LakeStats:
        """Table II-style corpus statistics."""
        num_columns = sum(table.num_columns for table in self._tables)
        num_rows = sum(table.num_rows for table in self._tables)
        num_cells = sum(table.num_rows * table.num_columns for table in self._tables)
        return LakeStats(
            name=self.name,
            num_tables=len(self._tables),
            num_columns=num_columns,
            num_rows=num_rows,
            num_cells=num_cells,
        )

    # -- persistence ---------------------------------------------------------------------

    def save(self, directory: Union[str, Path]) -> None:
        """Write every table as ``<directory>/<name>.csv``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for table in self._tables:
            write_table(table, directory / f"{table.name}.csv")

    @classmethod
    def load(cls, directory: Union[str, Path], name: Optional[str] = None) -> "DataLake":
        """Load every ``*.csv`` in a directory (sorted for stable ids)."""
        directory = Path(directory)
        if not directory.is_dir():
            raise LakeError(f"{directory} is not a directory")
        lake = cls(name or directory.name)
        for path in sorted(directory.glob("*.csv")):
            lake.add(read_table(path))
        return lake
