"""Data-lake container: a mutable corpus of tables with stable ids.

Table ids are assigned on insertion and are what the ``AllTables`` index,
seekers, and result sets refer to (the paper's ``TableId``). Ids are
**stable under mutation**: removing a table leaves a hole (its id is
never reused), replacing a table keeps its id, and adding always mints a
fresh id -- so incremental index maintenance (delete the table's index
rows, append the new ones) reproduces exactly what a from-scratch build
of the final lake state would assign.

Every mutation bumps a monotonically increasing **generation** counter;
consumers that cache derived state (seeker contexts, notably) carry the
generation they observed and can detect staleness instead of silently
serving results for dead table ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from ..errors import LakeError
from .csvio import read_table, write_table
from .table import Table


@dataclass(frozen=True)
class LakeStats:
    """Corpus-level statistics (the rows of the paper's Table II)."""

    name: str
    num_tables: int
    num_columns: int
    num_rows: int
    num_cells: int


@dataclass(frozen=True)
class LakeShard:
    """A picklable slice of a lake's live tables.

    The unit of work of the sharded ``AllTables`` build: table ids are
    carried explicitly (lakes that lived through removals have holes, so
    ids are no longer implicit in position), and :class:`Table` holds
    only plain Python lists/tuples (plus its cached type-inference
    flags), so a shard crosses a process boundary with one pickle
    round-trip and no lake-level state.
    """

    table_ids: tuple[int, ...]
    tables: tuple[Table, ...]

    @property
    def first_table_id(self) -> int:
        return self.table_ids[0] if self.table_ids else 0

    @property
    def num_cells(self) -> int:
        return sum(table.num_rows * table.num_columns for table in self.tables)


def _shard_of(items: list[tuple[int, Table]], start: int, stop: int) -> LakeShard:
    """Shard of the pre-materialised live ``(id, table)`` sequence."""
    selected = items[start:stop]
    return LakeShard(
        tuple(table_id for table_id, _ in selected),
        tuple(table for _, table in selected),
    )


class DataLake:
    """An ordered collection of :class:`Table` with id <-> name mapping
    and a full add / remove / replace lifecycle."""

    def __init__(self, name: str = "lake", tables: Optional[Iterable[Table]] = None) -> None:
        self.name = name
        # Slot list indexed by table id; removed tables leave a ``None``
        # hole so ids stay stable (and are never reused).
        self._tables: list[Optional[Table]] = []
        self._id_by_name: dict[str, int] = {}
        self._num_live = 0
        self._generation = 0
        # Per-slot generation stamp: the generation at which each slot
        # last changed (add or replace). The incremental-snapshot diff
        # compares these against a base snapshot's generation to find
        # the slots that need a delta payload.
        self._slot_generation: list[int] = []
        if tables is not None:
            for table in tables:
                self.add(table)

    # -- corpus management ---------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonically increasing mutation counter (add/remove/replace)."""
        return self._generation

    def add(self, table: Table) -> int:
        """Add a table; returns its assigned (fresh, never-reused) id."""
        if table.name in self._id_by_name:
            raise LakeError(f"lake already contains a table named {table.name!r}")
        table_id = len(self._tables)
        self._tables.append(table)
        self._id_by_name[table.name] = table_id
        self._num_live += 1
        self._generation += 1
        self._slot_generation.append(self._generation)
        return table_id

    def add_at(self, table_id: int, table: Table) -> int:
        """Add a table under an explicit id, padding holes as needed.

        The sharded-serving path: a shard's lake holds only its own slice
        of the global id space, and the coordinator -- not the lake --
        allocates fresh ids, so each shard must be able to place a table
        at any id it does not already occupy. Slots skipped by the
        padding are permanent holes, exactly like removal holes.
        """
        if table.name in self._id_by_name:
            raise LakeError(f"lake already contains a table named {table.name!r}")
        if table_id < 0:
            raise LakeError(f"table id must be non-negative, got {table_id}")
        if table_id < len(self._tables) and self._tables[table_id] is not None:
            raise LakeError(f"table id {table_id} is already occupied")
        while len(self._tables) <= table_id:
            self._tables.append(None)
            self._slot_generation.append(0)
        self._tables[table_id] = table
        self._id_by_name[table.name] = table_id
        self._num_live += 1
        self._generation += 1
        self._slot_generation[table_id] = self._generation
        return table_id

    def remove(self, table_id: int) -> Table:
        """Remove the table with *table_id*; its id becomes a permanent
        hole (never reassigned). Returns the removed table."""
        removed = self.by_id(table_id)
        self._tables[table_id] = None
        del self._id_by_name[removed.name]
        self._num_live -= 1
        self._generation += 1
        self._slot_generation[table_id] = self._generation
        return removed

    def replace(self, table_id: int, table: Table) -> Table:
        """Replace the table at *table_id* in place (the id is kept).
        Returns the previous table."""
        previous = self.by_id(table_id)
        existing_id = self._id_by_name.get(table.name)
        if existing_id is not None and existing_id != table_id:
            raise LakeError(
                f"lake already contains a table named {table.name!r} "
                f"(id {existing_id})"
            )
        self._tables[table_id] = table
        del self._id_by_name[previous.name]
        self._id_by_name[table.name] = table_id
        self._generation += 1
        self._slot_generation[table_id] = self._generation
        return previous

    def __len__(self) -> int:
        return self._num_live

    @property
    def num_slots(self) -> int:
        """Number of id slots (live tables plus holes) -- the smallest id
        guaranteed free, which is what a sharded coordinator seeds its
        global id allocator with."""
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return (table for table in self._tables if table is not None)

    def __contains__(self, name: str) -> bool:
        return name in self._id_by_name

    def table_ids(self) -> list[int]:
        """Live table ids, ascending."""
        return [i for i, table in enumerate(self._tables) if table is not None]

    def items(self) -> Iterator[tuple[int, Table]]:
        """``(table_id, table)`` pairs of live tables, ascending by id.

        The canonical enumeration for anything that must agree with
        ``AllTables``: on a lake that lived through removals,
        ``enumerate(lake)`` would renumber past the holes.
        """
        return (
            (i, table) for i, table in enumerate(self._tables) if table is not None
        )

    def by_id(self, table_id: int) -> Table:
        if not 0 <= table_id < len(self._tables) or self._tables[table_id] is None:
            raise LakeError(f"unknown table id: {table_id}")
        return self._tables[table_id]

    def has_id(self, table_id: int) -> bool:
        return 0 <= table_id < len(self._tables) and self._tables[table_id] is not None

    def by_name(self, name: str) -> Table:
        try:
            return self._tables[self._id_by_name[name]]
        except KeyError:
            raise LakeError(f"unknown table name: {name!r}") from None

    def id_of(self, name: str) -> int:
        try:
            return self._id_by_name[name]
        except KeyError:
            raise LakeError(f"unknown table name: {name!r}") from None

    def name_of(self, table_id: int) -> str:
        return self.by_id(table_id).name

    def gather_rows(self, table_id: int, row_ids: Iterable[int]) -> tuple[list[int], list[tuple]]:
        """Bulk row access for one table: ``(kept_row_ids, rows)``.

        The batched MC validation path fetches all surviving candidate
        rows of a table in one call instead of re-resolving the table per
        candidate. Row ids beyond the table's current length are dropped
        (the index may reference rows of a table that has since shrunk) --
        mirroring the per-row bounds check of the scalar seeker path.
        """
        rows = self.by_id(table_id).rows
        limit = len(rows)
        kept: list[int] = []
        gathered: list[tuple] = []
        for row_id in row_ids:
            row_id = int(row_id)
            if 0 <= row_id < limit:
                kept.append(row_id)
                gathered.append(rows[row_id])
        return kept, gathered

    # -- sharding ---------------------------------------------------------------------

    def shard(self, start: int, stop: int) -> LakeShard:
        """The live tables at ordinal positions ``[start, stop)`` (in
        ascending-id order) as one picklable shard."""
        if not 0 <= start <= stop <= self._num_live:
            raise LakeError(
                f"invalid shard range [{start}, {stop}) for a lake of "
                f"{self._num_live} tables"
            )
        return _shard_of(list(self.items()), start, stop)

    def shard_plan(self, num_shards: int) -> list[LakeShard]:
        """Partition the live tables into up to *num_shards* contiguous
        shards of roughly equal **cell** count (tables vary by orders of
        magnitude, so balancing by table count would skew worker
        runtimes).

        Contiguity (in ascending-id order) keeps the merge deterministic
        and trivial: emitting shard outputs in shard order reproduces the
        serial build's table-id emission order exactly. Greedy splitting
        against the ideal per-shard quota; every shard holds at least one
        table, and fewer shards than requested are returned when the lake
        is small.
        """
        if num_shards < 1:
            raise LakeError(f"num_shards must be >= 1, got {num_shards}")
        num_tables = self._num_live
        if num_tables == 0:
            return []
        items = list(self.items())  # one lake walk for the whole plan
        cells = [table.num_rows * table.num_columns for _, table in items]
        total = sum(cells)
        shards: list[LakeShard] = []
        start = 0
        accumulated = 0
        for position, table_cells in enumerate(cells):
            accumulated += table_cells
            remaining_shards = num_shards - len(shards)
            remaining_tables = num_tables - position - 1
            if remaining_shards <= 1:
                continue
            quota = total * (len(shards) + 1) / num_shards
            if accumulated >= quota or remaining_tables < remaining_shards - 1:
                shards.append(_shard_of(items, start, position + 1))
                start = position + 1
        if start < num_tables:
            shards.append(_shard_of(items, start, num_tables))
        return shards

    @classmethod
    def from_shard(cls, shard: LakeShard, name: str = "shard") -> "DataLake":
        """A standalone lake over one shard's tables, each at its
        **global** id slot (ids below/between the shard's tables become
        holes). A per-shard ``AllTables`` built over such a lake indexes
        rows under globally-stable ``TableId``s, which is what makes
        per-shard seeker partials mergeable without any id translation."""
        lake = cls(name)
        for table_id, table in zip(shard.table_ids, shard.tables):
            lake.add_at(table_id, table)
        return lake

    # -- statistics -------------------------------------------------------------------

    def stats(self) -> LakeStats:
        """Table II-style corpus statistics (over live tables)."""
        num_columns = sum(table.num_columns for table in self)
        num_rows = sum(table.num_rows for table in self)
        num_cells = sum(table.num_rows * table.num_columns for table in self)
        return LakeStats(
            name=self.name,
            num_tables=self._num_live,
            num_columns=num_columns,
            num_rows=num_rows,
            num_cells=num_cells,
        )

    # -- snapshots ---------------------------------------------------------------------

    def snapshot_meta(self) -> dict:
        """Structural lake metadata for a snapshot manifest: one entry
        per id slot (``None`` marks a removal hole -- ids stay stable
        through save/load), each recording name and shape. Enough to
        validate that a caller-supplied lake is the one the snapshot was
        built from, without shipping any cell data."""
        return {
            "name": self.name,
            "generation": self._generation,
            "slot_generations": list(self._slot_generation),
            "slots": [
                None
                if table is None
                else {
                    "name": table.name,
                    "columns": list(table.columns),
                    "num_rows": table.num_rows,
                }
                for table in self._tables
            ],
        }

    def slot_stamp(self, table_id: int) -> int:
        """Generation at which slot *table_id* last changed (0 for slots
        created as padding holes)."""
        return self._slot_generation[table_id]

    def adopt_slot_generations(self, stamps: Optional[list]) -> None:
        """Align the per-slot stamps with a snapshot's recorded ones (the
        load path: a caller-supplied lake may have reached the same state
        through a different op order, and payload-rebuilt lakes default
        to zero stamps). No-op when the snapshot predates stamps."""
        if stamps is not None and len(stamps) == len(self._tables):
            self._slot_generation = [int(stamp) for stamp in stamps]

    def snapshot_payload(self) -> list:
        """The picklable cell payload backing :meth:`from_snapshot`:
        plain ``(name, columns, rows)`` tuples per live slot (``None``
        for holes) -- deliberately class-free, so the on-disk format
        survives refactors of :class:`Table` itself."""
        return [
            None if table is None else (table.name, list(table.columns), table.rows)
            for table in self._tables
        ]

    @classmethod
    def from_snapshot(cls, payload: list, name: str, generation: int) -> "DataLake":
        """Rebuild a lake -- holes, stable ids, and generation counter
        included -- from :meth:`snapshot_payload` output."""
        lake = cls(name)
        for slot in payload:
            if slot is None:
                lake._tables.append(None)
                lake._slot_generation.append(0)
                continue
            table_name, columns, rows = slot
            table = Table(table_name, columns, rows)
            lake._id_by_name[table.name] = len(lake._tables)
            lake._tables.append(table)
            lake._slot_generation.append(0)
            lake._num_live += 1
        lake._generation = generation
        return lake

    def snapshot_mismatch(self, meta: dict) -> Optional[str]:
        """Why this lake does NOT match a snapshot's lake metadata, or
        ``None`` when it does -- the guard for ``Blend.load(path, lake=...)``
        warm starts that skip the snapshot's own cell payload."""
        if self._generation != meta["generation"]:
            return (
                f"lake generation {self._generation} != snapshot "
                f"generation {meta['generation']}"
            )
        slots = meta["slots"]
        if len(self._tables) != len(slots):
            return f"lake has {len(self._tables)} id slots, snapshot has {len(slots)}"
        for table_id, (table, slot) in enumerate(zip(self._tables, slots)):
            if (table is None) != (slot is None):
                return f"table id {table_id}: live/hole mismatch"
            if table is None:
                continue
            if table.name != slot["name"]:
                return (
                    f"table id {table_id}: name {table.name!r} != "
                    f"snapshot {slot['name']!r}"
                )
            if list(table.columns) != slot["columns"] or table.num_rows != slot["num_rows"]:
                return f"table id {table_id} ({table.name!r}): shape differs"
        return None

    # -- persistence ---------------------------------------------------------------------

    def save(self, directory: Union[str, Path]) -> None:
        """Write every live table as ``<directory>/<name>.csv``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for table in self:
            write_table(table, directory / f"{table.name}.csv")

    @classmethod
    def load(cls, directory: Union[str, Path], name: Optional[str] = None) -> "DataLake":
        """Load every ``*.csv`` in a directory (sorted for stable ids)."""
        directory = Path(directory)
        if not directory.is_dir():
            raise LakeError(f"{directory} is not a directory")
        lake = cls(name or directory.name)
        for path in sorted(directory.glob("*.csv")):
            lake.add(read_table(path))
        return lake
