"""Data-lake container: an ordered corpus of tables with stable ids.

Table ids are assigned on insertion order and are what the ``AllTables``
index, seekers, and result sets refer to (the paper's ``TableId``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from ..errors import LakeError
from .csvio import read_table, write_table
from .table import Table


@dataclass(frozen=True)
class LakeStats:
    """Corpus-level statistics (the rows of the paper's Table II)."""

    name: str
    num_tables: int
    num_columns: int
    num_rows: int
    num_cells: int


class DataLake:
    """An ordered collection of :class:`Table` with id <-> name mapping."""

    def __init__(self, name: str = "lake", tables: Optional[Iterable[Table]] = None) -> None:
        self.name = name
        self._tables: list[Table] = []
        self._id_by_name: dict[str, int] = {}
        if tables is not None:
            for table in tables:
                self.add(table)

    # -- corpus management ---------------------------------------------------------

    def add(self, table: Table) -> int:
        """Add a table; returns its assigned table id."""
        if table.name in self._id_by_name:
            raise LakeError(f"lake already contains a table named {table.name!r}")
        table_id = len(self._tables)
        self._tables.append(table)
        self._id_by_name[table.name] = table_id
        return table_id

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._id_by_name

    def table_ids(self) -> range:
        return range(len(self._tables))

    def by_id(self, table_id: int) -> Table:
        if not 0 <= table_id < len(self._tables):
            raise LakeError(f"unknown table id: {table_id}")
        return self._tables[table_id]

    def by_name(self, name: str) -> Table:
        try:
            return self._tables[self._id_by_name[name]]
        except KeyError:
            raise LakeError(f"unknown table name: {name!r}") from None

    def id_of(self, name: str) -> int:
        try:
            return self._id_by_name[name]
        except KeyError:
            raise LakeError(f"unknown table name: {name!r}") from None

    def name_of(self, table_id: int) -> str:
        return self.by_id(table_id).name

    def gather_rows(self, table_id: int, row_ids: Iterable[int]) -> tuple[list[int], list[tuple]]:
        """Bulk row access for one table: ``(kept_row_ids, rows)``.

        The batched MC validation path fetches all surviving candidate
        rows of a table in one call instead of re-resolving the table per
        candidate. Row ids beyond the table's current length are dropped
        (the index may reference rows of a table that has since shrunk) --
        mirroring the per-row bounds check of the scalar seeker path.
        """
        rows = self.by_id(table_id).rows
        limit = len(rows)
        kept: list[int] = []
        gathered: list[tuple] = []
        for row_id in row_ids:
            row_id = int(row_id)
            if 0 <= row_id < limit:
                kept.append(row_id)
                gathered.append(rows[row_id])
        return kept, gathered

    # -- statistics -------------------------------------------------------------------

    def stats(self) -> LakeStats:
        """Table II-style corpus statistics."""
        num_columns = sum(table.num_columns for table in self._tables)
        num_rows = sum(table.num_rows for table in self._tables)
        num_cells = sum(table.num_rows * table.num_columns for table in self._tables)
        return LakeStats(
            name=self.name,
            num_tables=len(self._tables),
            num_columns=num_columns,
            num_rows=num_rows,
            num_cells=num_cells,
        )

    # -- persistence ---------------------------------------------------------------------

    def save(self, directory: Union[str, Path]) -> None:
        """Write every table as ``<directory>/<name>.csv``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for table in self._tables:
            write_table(table, directory / f"{table.name}.csv")

    @classmethod
    def load(cls, directory: Union[str, Path], name: Optional[str] = None) -> "DataLake":
        """Load every ``*.csv`` in a directory (sorted for stable ids)."""
        directory = Path(directory)
        if not directory.is_dir():
            raise LakeError(f"{directory} is not a directory")
        lake = cls(name or directory.name)
        for path in sorted(directory.glob("*.csv")):
            lake.add(read_table(path))
        return lake
