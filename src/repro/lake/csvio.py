"""CSV round-trip for lake tables (standard library only, no pandas).

Values are written as text; on read, numeric-looking cells are parsed back
to int/float and empty cells become NULL -- the same best-effort typing a
lake crawler applies to raw CSV corpora.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from ..errors import LakeError
from .table import Cell, Table


def parse_cell(text: str) -> Cell:
    """Best-effort typed value for a raw CSV field."""
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def render_cell(value: Cell) -> str:
    """Inverse of :func:`parse_cell` (NULL -> empty field)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def read_table(path: Union[str, Path], name: str | None = None) -> Table:
    """Load one CSV file (first line is the header) as a :class:`Table`."""
    path = Path(path)
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise LakeError(f"{path} is empty (no header row)") from None
        rows = [tuple(parse_cell(field) for field in row) for row in reader]
    return Table(name or path.stem, header, rows)


def write_table(table: Table, path: Union[str, Path]) -> None:
    """Write a table to CSV (header + rows)."""
    path = Path(path)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        for row in table.rows:
            writer.writerow([render_cell(value) for value in row])
