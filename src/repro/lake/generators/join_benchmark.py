"""Join-search benchmark generator (Fig. 5, Fig. 6, Table V workloads).

Follows the JOSIE/LakeBench evaluation protocol: query columns are sampled
from the lake itself (so non-trivial overlaps exist by construction), and
the ground truth is the *exact* top-k by set overlap, computed brute force.

The multi-column variant plants both correctly aligned joinable rows and
"misaligned" rows (same values, permuted across rows) in lake tables --
the latter are exactly the candidates that pass MATE's bloom-filter stage
but fail exact verification, producing the false positives of Table V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..datalake import DataLake
from ..table import Table, normalize_cell
from .corpus import CorpusConfig, generate_corpus
from .vocabulary import Vocabulary


@dataclass(frozen=True)
class JoinQuery:
    """A single-column join-search query: a set of (normalised) values."""

    values: tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.values)


@dataclass
class JoinBenchmark:
    """Lake + query workload + exact overlap ground truth."""

    lake: DataLake
    queries: list[JoinQuery]
    _column_tokens: Optional[list[list[set[str]]]] = field(default=None, repr=False)

    def _tokens(self) -> list[list[set[str]]]:
        """Distinct normalised tokens per (table, column), cached."""
        if self._column_tokens is None:
            per_table: list[list[set[str]]] = []
            for table in self.lake:
                columns: list[set[str]] = []
                for position in range(table.num_columns):
                    tokens = {
                        normalize_cell(row[position]) for row in table.rows
                    }
                    tokens.discard(None)
                    columns.append(tokens)
                per_table.append(columns)
            self._column_tokens = per_table
        return self._column_tokens

    def exact_overlaps(self, query: JoinQuery) -> list[tuple[int, int]]:
        """``(table_id, best column overlap)`` for every table, exact."""
        query_set = set(query.values)
        overlaps = []
        for table_id, columns in enumerate(self._tokens()):
            best = 0
            for tokens in columns:
                overlap = len(query_set & tokens)
                if overlap > best:
                    best = overlap
            overlaps.append((table_id, best))
        return overlaps

    def ground_truth(self, query: JoinQuery, k: int) -> list[int]:
        """Exact top-k table ids by best single-column overlap (>0 only),
        ties broken by table id for determinism."""
        overlaps = self.exact_overlaps(query)
        ranked = sorted(
            (pair for pair in overlaps if pair[1] > 0),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return [table_id for table_id, _ in ranked[:k]]


def make_join_benchmark(
    num_tables: int = 60,
    query_sizes: Sequence[int] = (10, 100, 1000),
    queries_per_size: int = 5,
    max_rows: int = 80,
    seed: int = 7,
    name: str = "join_bench",
) -> JoinBenchmark:
    """Build a join benchmark: a corpus plus query columns sampled from it."""
    lake = generate_corpus(
        CorpusConfig(
            name=name,
            num_tables=num_tables,
            min_rows=10,
            max_rows=max_rows,
            seed=seed,
        )
    )
    vocab = Vocabulary(seed + 1)
    rng = vocab.rng

    # Collect candidate source columns: distinct tokens of string columns.
    source_columns: list[list[str]] = []
    for table in lake:
        numeric = table.numeric_columns()
        for position, column in enumerate(table.columns):
            if numeric[position]:
                continue
            tokens = {normalize_cell(row[position]) for row in table.rows}
            tokens.discard(None)
            if len(tokens) >= 3:
                source_columns.append(sorted(tokens))
    if not source_columns:
        raise ValueError("corpus has no usable string columns for queries")

    queries: list[JoinQuery] = []
    for size in query_sizes:
        for _ in range(queries_per_size):
            values: set[str] = set()
            # Union of sampled lake columns until the requested size is
            # reached -- mirrors JOSIE's query-column construction, where
            # larger queries span more source columns.
            attempts = 0
            while len(values) < size and attempts < 50 * max(size, 1):
                column = rng.choice(source_columns)
                take = min(len(column), size - len(values))
                values.update(rng.sample(column, take))
                attempts += 1
            queries.append(JoinQuery(tuple(sorted(values))))
    return JoinBenchmark(lake=lake, queries=queries)


# --------------------------------------------------------------------------
# Multi-column (composite key) benchmark -- Table V
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MultiColumnQuery:
    """A multi-column join query: a small table whose tuples must appear
    row-aligned in candidate tables."""

    table: Table

    @property
    def key_width(self) -> int:
        return self.table.num_columns


@dataclass
class MultiColumnBenchmark:
    lake: DataLake
    queries: list[MultiColumnQuery]

    def joinable_rows(self, query: MultiColumnQuery, table_id: int) -> int:
        """Exact count of rows in *table_id* that fully match some query
        tuple on all key columns (the TP definition of Table V)."""
        query_tuples = {
            tuple(normalize_cell(v) for v in row) for row in query.table.rows
        }
        table = self.lake.by_id(table_id)
        width = query.key_width
        count = 0
        for row in table.rows:
            tokens = [normalize_cell(v) for v in row]
            for start in range(0, len(tokens) - width + 1):
                if tuple(tokens[start : start + width]) in query_tuples:
                    count += 1
                    break
            else:
                # Also check arbitrary column combinations (values may not
                # be adjacent); bounded by small table widths.
                if _matches_any_combination(tokens, query_tuples, width):
                    count += 1
        return count


def _matches_any_combination(tokens: list, query_tuples: set, width: int) -> bool:
    from itertools import permutations

    positions = range(len(tokens))
    for combo in permutations(positions, width):
        if tuple(tokens[p] for p in combo) in query_tuples:
            return True
    return False


def make_multicolumn_benchmark(
    num_queries: int = 5,
    key_width: int = 2,
    rows_per_query: int = 8,
    aligned_tables_per_query: int = 3,
    misaligned_tables_per_query: int = 3,
    wide_tables_per_query: int = 0,
    wide_width: int = 8,
    wide_rows: int = 30,
    distractor_tables: int = 20,
    seed: int = 11,
    name: str = "mc_bench",
) -> MultiColumnBenchmark:
    """Composite-key benchmark with planted aligned and misaligned tables.

    *Aligned* tables contain query tuples with correct row alignment (true
    positives). *Misaligned* tables contain the same value multiset but
    permuted across rows -- they survive single-value index intersection
    (and often XASH's OR-aggregated bloom filter) yet fail exact
    verification, which is precisely what separates BLEND's >99 %
    precision from MATE's ~61-73 % in Table V.

    *Wide* tables reproduce MATE's dominant false-positive mechanism on
    real corpora: rows with many cells saturate the OR-aggregated XASH
    super key, so any row matching the query's first column passes the
    bloom filter. MATE's single-column candidate fetch admits all of
    them; BLEND's SQL join (hits from *every* query column in the same
    row) rejects them before any filtering.
    """
    vocab = Vocabulary(seed)
    rng = vocab.rng
    pool = vocab.synthetic_pool(rows_per_query * num_queries * 6, syllables=3)
    lake = generate_corpus(
        CorpusConfig(name=name, num_tables=distractor_tables, seed=seed + 1)
    )
    queries: list[MultiColumnQuery] = []

    for query_index in range(num_queries):
        base = [pool.pop() for _ in range(rows_per_query * key_width)]
        query_rows = [
            tuple(base[r * key_width + c] for c in range(key_width))
            for r in range(rows_per_query)
        ]
        columns = [f"key_{c}" for c in range(key_width)]
        queries.append(
            MultiColumnQuery(Table(f"{name}_q{query_index}", columns, query_rows))
        )

        for copy in range(aligned_tables_per_query):
            extra = [vocab.person_name() for _ in range(rows_per_query)]
            rows = [
                query_rows[r] + (extra[r],)
                for r in range(rows_per_query)
                if rng.random() < 0.9
            ]
            rows += [
                tuple(vocab.synthetic_word() for _ in range(key_width)) + (vocab.person_name(),)
                for _ in range(rng.randint(2, 6))
            ]
            lake.add(
                Table(
                    f"{name}_q{query_index}_aligned{copy}",
                    columns + ["payload"],
                    vocab.shuffled(rows),
                )
            )

        for copy in range(misaligned_tables_per_query):
            flat = [value for row in query_rows for value in row]
            rng.shuffle(flat)
            rows = [
                tuple(flat[r * key_width + c] for c in range(key_width))
                + (vocab.person_name(),)
                for r in range(rows_per_query)
            ]
            lake.add(
                Table(
                    f"{name}_q{query_index}_shuffled{copy}",
                    columns + ["payload"],
                    rows,
                )
            )

        for copy in range(wide_tables_per_query):
            # Each wide row carries exactly ONE query value (from a
            # rotating query column, so whichever column MATE's fetch
            # picks it still hits these rows) plus many filler cells that
            # saturate the row's XASH super key.
            wide_columns = ["hit"] + [f"w{i}" for i in range(wide_width)]
            rows = []
            for row_index in range(wide_rows):
                source_column = row_index % key_width
                value = query_rows[rng.randrange(rows_per_query)][source_column]
                row = [value]
                row.extend(vocab.synthetic_word() for _ in range(wide_width))
                rows.append(tuple(row))
            lake.add(
                Table(f"{name}_q{query_index}_wide{copy}", wide_columns, rows)
            )

    return MultiColumnBenchmark(lake=lake, queries=queries)
