"""Union-search benchmark generator (Fig. 7 and Table VI workloads).

Follows the TUS construction (Nargesian et al.): seed tables are split
row-wise into several partitions, each partition keeps a random column
subset (optionally renamed) and becomes one lake table. All tables derived
from the same seed form a *unionable family* -- the exact ground truth.
Distractor tables come from the base corpus generator.

The ``TUS``-like configurations produce many partitions per seed (large
ground-truth sets -> low ideal recall at small k, as the paper notes);
``SANTOS``-like configurations produce few.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..datalake import DataLake
from ..table import Table
from .corpus import CorpusConfig, generate_corpus
from .vocabulary import POOLS, Vocabulary


@dataclass
class UnionBenchmark:
    """Lake + union queries + family ground truth."""

    lake: DataLake
    queries: list[str]  # query table names (each is itself in the lake)
    families: dict[str, set[str]]  # table name -> other members of its family

    def ground_truth(self, query_name: str) -> set[int]:
        """Table ids unionable with *query_name* (excluding itself)."""
        return {
            self.lake.id_of(member)
            for member in self.families[query_name]
            if member != query_name
        }


_THEMES = [
    ("people", [("first_name", "first_name"), ("last_name", "last_name"), ("city", "city"), ("country", "country")]),
    ("inventory", [("product", "product"), ("color", "color"), ("city", "warehouse")]),
    ("staff", [("department", "department"), ("first_name", "lead"), ("city", "location")]),
    ("offices", [("city", "city"), ("country", "country"), ("department", "unit")]),
]


def make_union_benchmark(
    num_seeds: int = 8,
    partitions_per_seed: int = 4,
    rows_per_seed: int = 60,
    distractor_tables: int = 25,
    num_queries: Optional[int] = None,
    rename_probability: float = 0.3,
    seed: int = 13,
    name: str = "union_bench",
) -> UnionBenchmark:
    """Build a TUS-style union benchmark.

    Each seed table gets 1-2 extra numeric columns so partitions carry a
    mix of types. Partitions drop up to one column and may rename columns
    (union search must therefore rely on values, not headers).
    """
    vocab = Vocabulary(seed)
    rng = vocab.rng
    lake = generate_corpus(
        CorpusConfig(name=f"{name}_bg", num_tables=distractor_tables, seed=seed + 1)
    )
    families: dict[str, set[str]] = {}
    queries: list[str] = []

    for seed_index in range(num_seeds):
        theme_name, theme_columns = _THEMES[seed_index % len(_THEMES)]
        columns = [f"{alias}" for _, alias in theme_columns] + ["amount"]
        rows = []
        for _ in range(rows_per_seed):
            row = [vocab.zipf_choice(POOLS[pool]) for pool, _ in theme_columns]
            row.append(rng.randint(0, 1000))
            rows.append(tuple(row))

        # Partition rows round-robin so value distributions stay similar
        # across family members (the unionability signal).
        partitions: list[list[tuple]] = [[] for _ in range(partitions_per_seed)]
        for row_index, row in enumerate(rows):
            partitions[row_index % partitions_per_seed].append(row)

        member_names = []
        for part_index, part_rows in enumerate(partitions):
            keep = list(range(len(columns)))
            if len(keep) > 2 and rng.random() < 0.5:
                keep.remove(rng.choice(keep[:-1]))  # drop one non-numeric column
            part_columns = []
            for position in keep:
                column = columns[position]
                if rng.random() < rename_probability:
                    column = f"{column}_{vocab.synthetic_word(2)}"
                part_columns.append(column)
            table_name = f"{name}_{theme_name}{seed_index}_p{part_index}"
            lake.add(
                Table(
                    table_name,
                    part_columns,
                    [tuple(row[p] for p in keep) for row in part_rows],
                )
            )
            member_names.append(table_name)

        family = set(member_names)
        for member in member_names:
            families[member] = family
        queries.append(member_names[0])

    if num_queries is not None:
        queries = queries[:num_queries]
    return UnionBenchmark(lake=lake, queries=queries, families=families)
