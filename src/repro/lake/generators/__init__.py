"""Synthetic corpus and benchmark generators (see DESIGN.md section 1 for
the substitution rationale: these replace the paper's public corpora)."""

from .corpus import CorpusConfig, generate_corpus, value_frequencies
from .correlation_benchmark import CorrelationBenchmark, CorrelationQuery, make_correlation_benchmark
from .imputation_benchmark import ImputationBenchmark, ImputationQuery, make_imputation_benchmark
from .join_benchmark import (
    JoinBenchmark,
    JoinQuery,
    MultiColumnBenchmark,
    MultiColumnQuery,
    make_join_benchmark,
    make_multicolumn_benchmark,
)
from .union_benchmark import UnionBenchmark, make_union_benchmark

__all__ = [
    "CorpusConfig",
    "generate_corpus",
    "value_frequencies",
    "CorrelationBenchmark",
    "CorrelationQuery",
    "make_correlation_benchmark",
    "ImputationBenchmark",
    "ImputationQuery",
    "make_imputation_benchmark",
    "JoinBenchmark",
    "JoinQuery",
    "MultiColumnBenchmark",
    "MultiColumnQuery",
    "make_join_benchmark",
    "make_multicolumn_benchmark",
    "UnionBenchmark",
    "make_union_benchmark",
]
