"""Seeded vocabularies for synthetic lake generation.

Real table corpora (GitTables, web tables, open data) share value
vocabularies across tables -- that shared-token structure is what makes
discovery operators work at all. The pools below provide realistic string
domains; :class:`Vocabulary` draws from them with a seeded RNG and can
mint unlimited synthetic words when a larger domain is needed.
"""

from __future__ import annotations

import random
from typing import Sequence

FIRST_NAMES = [
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "nina",
    "omar", "wei", "fatima", "yuki", "ahmed", "sofia", "lukas", "elena",
    "mahdi", "renee", "ziawasch", "christoph", "harry", "luna", "draco",
]

LAST_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "weasley", "potter", "lovegood", "malfoy", "chang", "riddle", "abedjan",
]

CITIES = [
    "berlin", "hannover", "waterloo", "toronto", "new york", "london",
    "paris", "madrid", "rome", "vienna", "zurich", "amsterdam", "brussels",
    "copenhagen", "oslo", "stockholm", "helsinki", "warsaw", "prague",
    "budapest", "lisbon", "dublin", "athens", "ankara", "cairo", "tokyo",
    "osaka", "seoul", "beijing", "shanghai", "delhi", "mumbai", "sydney",
    "melbourne", "auckland", "chicago", "boston", "seattle", "austin",
]

DEPARTMENTS = [
    "hr", "marketing", "finance", "it", "r&d", "sales", "legal",
    "operations", "procurement", "logistics", "support", "engineering",
    "design", "security", "quality", "facilities", "communications",
]

PRODUCTS = [
    "laptop", "monitor", "keyboard", "mouse", "webcam", "headset", "dock",
    "printer", "scanner", "tablet", "phone", "router", "switch", "server",
    "chair", "desk", "lamp", "cable", "adapter", "battery", "charger",
    "backpack", "notebook", "pen", "stapler", "whiteboard", "projector",
]

COLORS = [
    "red", "green", "blue", "yellow", "orange", "purple", "black", "white",
    "gray", "brown", "pink", "cyan", "magenta", "olive", "navy", "teal",
]

COUNTRIES = [
    "germany", "canada", "usa", "uk", "france", "spain", "italy", "austria",
    "switzerland", "netherlands", "belgium", "denmark", "norway", "sweden",
    "finland", "poland", "czechia", "hungary", "portugal", "ireland",
    "greece", "turkey", "egypt", "japan", "south korea", "china", "india",
    "australia", "new zealand", "brazil", "mexico", "argentina",
]

POOLS: dict[str, list[str]] = {
    "first_name": FIRST_NAMES,
    "last_name": LAST_NAMES,
    "city": CITIES,
    "department": DEPARTMENTS,
    "product": PRODUCTS,
    "color": COLORS,
    "country": COUNTRIES,
}

_SYLLABLES = [
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du", "ka", "ke",
    "ki", "ko", "ku", "la", "le", "li", "lo", "lu", "ma", "me", "mi", "mo",
    "mu", "na", "ne", "ni", "no", "nu", "ra", "re", "ri", "ro", "ru", "sa",
    "se", "si", "so", "su", "ta", "te", "ti", "to", "tu", "va", "ve", "vi",
    "vo", "vu", "za", "ze", "zi", "zo", "zu",
]


class Vocabulary:
    """Seeded value factory over the shared pools."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    @property
    def rng(self) -> random.Random:
        return self._rng

    def word(self, pool: str) -> str:
        """A uniform draw from a named pool."""
        return self._rng.choice(POOLS[pool])

    def person_name(self) -> str:
        return f"{self._rng.choice(FIRST_NAMES)} {self._rng.choice(LAST_NAMES)}"

    def synthetic_word(self, syllables: int = 3) -> str:
        """A pronounceable pseudo-word; the unbounded tail of real lake
        vocabularies (identifiers, codes, obscure entities)."""
        return "".join(self._rng.choice(_SYLLABLES) for _ in range(syllables))

    def synthetic_pool(self, size: int, syllables: int = 3) -> list[str]:
        """*size* distinct synthetic words."""
        pool: list[str] = []
        seen: set[str] = set()
        attempts = 0
        while len(pool) < size:
            word = self.synthetic_word(syllables)
            attempts += 1
            if word not in seen:
                seen.add(word)
                pool.append(word)
            elif attempts > 20 * size:
                # Extend word length rather than loop forever on a small
                # syllable space.
                syllables += 1
                attempts = 0
        return pool

    def code(self, prefix: str, width: int = 5) -> str:
        """An identifier like ``sku-00042``."""
        return f"{prefix}-{self._rng.randrange(10 ** width):0{width}d}"

    def zipf_choice(self, pool: Sequence[str], alpha: float = 1.2) -> str:
        """A skewed draw: rank r is picked with probability ~ 1/r^alpha.

        Value frequencies in table corpora are heavily skewed; this is the
        property that makes posting-list lengths (and thus seeker costs)
        vary by orders of magnitude, which the BLEND cost model learns.
        """
        # Inverse-CDF sampling over the truncated zeta distribution.
        n = len(pool)
        u = self._rng.random()
        # Precomputing the normaliser per call is O(n); pools are small.
        weights_total = sum(1.0 / (rank ** alpha) for rank in range(1, n + 1))
        acc = 0.0
        for rank in range(1, n + 1):
            acc += (1.0 / (rank ** alpha)) / weights_total
            if u <= acc:
                return pool[rank - 1]
        return pool[-1]

    def sample(self, pool: Sequence[str], k: int) -> list[str]:
        """Sample without replacement (k capped at pool size)."""
        k = min(k, len(pool))
        return self._rng.sample(list(pool), k)

    def shuffled(self, items: Sequence) -> list:
        out = list(items)
        self._rng.shuffle(out)
        return out
