"""Base synthetic-corpus generator.

Stands in for the public table corpora of the paper's Table II (GitTables,
DWTC, WebTables, open-data portals). The generator reproduces the
*statistical* structure discovery algorithms care about:

* shared string vocabularies across tables (so joins/unions exist),
* Zipf-skewed value frequencies (so posting lists vary by orders of
  magnitude -- the signal BLEND's learned cost model uses),
* mixed string/numeric columns, missing values, and varied table shapes.

All generation is deterministic in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalake import DataLake
from ..table import Table
from .vocabulary import POOLS, Vocabulary


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs for :func:`generate_corpus`.

    The defaults produce a small GitTables-like corpus suitable for unit
    tests; benchmarks scale ``num_tables``/``max_rows`` up.
    """

    name: str = "synthetic"
    num_tables: int = 50
    min_rows: int = 5
    max_rows: int = 60
    min_columns: int = 2
    max_columns: int = 6
    numeric_column_fraction: float = 0.3
    null_fraction: float = 0.02
    synthetic_vocab_size: int = 400
    zipf_alpha: float = 1.2
    seed: int = 0


# String column archetypes: (pool name, use_zipf). ``synthetic`` draws from
# the per-corpus synthetic pool instead of a named vocabulary pool.
_STRING_ARCHETYPES = [
    ("first_name", True),
    ("last_name", True),
    ("city", True),
    ("department", True),
    ("product", True),
    ("color", True),
    ("country", True),
    ("synthetic", False),
    ("synthetic", True),
    ("person", False),
]


def generate_corpus(config: CorpusConfig = CorpusConfig()) -> DataLake:
    """Generate a synthetic data lake according to *config*."""
    vocab = Vocabulary(config.seed)
    rng = vocab.rng
    synthetic_pool = vocab.synthetic_pool(config.synthetic_vocab_size)
    lake = DataLake(config.name)

    for table_index in range(config.num_tables):
        num_rows = rng.randint(config.min_rows, config.max_rows)
        num_columns = rng.randint(config.min_columns, config.max_columns)
        columns: list[str] = []
        makers = []
        for column_index in range(num_columns):
            if rng.random() < config.numeric_column_fraction:
                columns.append(f"num_{column_index}")
                makers.append(_numeric_maker(vocab))
            else:
                pool_name, use_zipf = rng.choice(_STRING_ARCHETYPES)
                columns.append(f"{pool_name}_{column_index}")
                makers.append(_string_maker(vocab, pool_name, use_zipf, synthetic_pool))
        rows = []
        for _ in range(num_rows):
            row = []
            for maker in makers:
                if rng.random() < config.null_fraction:
                    row.append(None)
                else:
                    row.append(maker())
            rows.append(tuple(row))
        lake.add(Table(f"{config.name}_t{table_index:05d}", columns, rows))
    return lake


def _numeric_maker(vocab: Vocabulary):
    """A column-level numeric value factory with a random distribution
    shape (ids, small counts, continuous measurements)."""
    rng = vocab.rng
    kind = rng.choice(["id", "count", "measure", "year"])
    if kind == "id":
        base = rng.randrange(1000, 100000)
        counter = iter(range(base, base + 10 ** 6))
        return lambda: next(counter)
    if kind == "count":
        return lambda: rng.randint(0, 500)
    if kind == "year":
        return lambda: rng.randint(1990, 2026)
    scale = rng.choice([1.0, 10.0, 1000.0])
    return lambda: round(rng.gauss(0, 1) * scale, 3)


def _string_maker(vocab: Vocabulary, pool_name: str, use_zipf: bool, synthetic_pool: list[str]):
    if pool_name == "person":
        return vocab.person_name
    if pool_name == "synthetic":
        pool = synthetic_pool
    else:
        pool = POOLS[pool_name]
    if use_zipf:
        alpha = 1.2
        return lambda: vocab.zipf_choice(pool, alpha)
    rng = vocab.rng
    return lambda: rng.choice(pool)


def value_frequencies(lake: DataLake) -> dict[str, int]:
    """Token -> occurrence count across the whole lake (normalised cells).

    This is the statistic the BLEND cost model's ``avg value frequency``
    feature is computed from.
    """
    from ..table import normalize_cell

    frequencies: dict[str, int] = {}
    for table in lake:
        for _, _, value in table.iter_cells():
            token = normalize_cell(value)
            if token is not None:
                frequencies[token] = frequencies.get(token, 0) + 1
    return frequencies
