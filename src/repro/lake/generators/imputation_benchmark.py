"""Example-based data-imputation benchmark (Table III workload).

Models the paper's GitTables imputation experiment: the user has a
two-column table whose first rows are complete (the *examples*) and whose
remaining rows miss the dependent value (the *queries*). Tables in the
lake that contain the functional dependency key -> value, covering both
the examples and the query keys, can impute the missing cells (the
DataXFormer strategy the paper cites).

Ground truth: lake tables that contain ALL example pairs row-aligned and
at least one query key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..datalake import DataLake
from ..table import Table, normalize_cell
from .corpus import CorpusConfig, generate_corpus
from .vocabulary import Vocabulary


@dataclass(frozen=True)
class ImputationQuery:
    """Examples (complete key/value pairs) plus keys needing values."""

    name: str
    examples: tuple[tuple[str, str], ...]
    query_keys: tuple[str, ...]
    answers: tuple[str, ...]  # the held-out true values for query_keys

    def example_table(self) -> Table:
        return Table(f"{self.name}_examples", ["key", "value"], list(self.examples))


@dataclass
class ImputationBenchmark:
    lake: DataLake
    queries: list[ImputationQuery]

    def ground_truth(self, query: ImputationQuery) -> set[int]:
        """Tables containing every example pair (row-aligned) and at least
        one of the query keys."""
        example_pairs = {
            (normalize_cell(k), normalize_cell(v)) for k, v in query.examples
        }
        query_tokens = {normalize_cell(k) for k in query.query_keys}
        matches = set()
        for table_id, table in enumerate(self.lake):
            pairs_found = set()
            keys_found = False
            for row in table.rows:
                tokens = [normalize_cell(v) for v in row]
                for i, a in enumerate(tokens):
                    if a in query_tokens:
                        keys_found = True
                    for j, b in enumerate(tokens):
                        if i != j and (a, b) in example_pairs:
                            pairs_found.add((a, b))
            if keys_found and pairs_found == example_pairs:
                matches.add(table_id)
        return matches


def make_imputation_benchmark(
    num_queries: int = 5,
    num_keys: int = 30,
    num_examples: int = 5,
    complete_tables_per_query: int = 3,
    partial_tables_per_query: int = 2,
    distractor_tables: int = 20,
    decoy_tables_per_query: int = 0,
    decoy_rows: int = 200,
    example_key_pool: Optional[list[str]] = None,
    seed: int = 23,
    name: str = "impute_bench",
) -> ImputationBenchmark:
    """Build an imputation benchmark with planted FD tables.

    *Complete* tables contain the full key -> value mapping (they can
    impute everything); *partial* tables contain the examples but few of
    the query keys, or the keys with conflicting values -- they must not
    be ranked above complete ones. *Decoy* tables contain all example
    pairs but none of the query keys, padded with ``decoy_rows`` unrelated
    rows: they trap any pipeline that fetches candidates by examples alone
    and validates row by row (the federated baselines of Table III), while
    BLEND's rewritten plans skip them entirely.
    """
    vocab = Vocabulary(seed)
    rng = vocab.rng
    lake = generate_corpus(
        CorpusConfig(name=f"{name}_bg", num_tables=distractor_tables, seed=seed + 1)
    )
    queries: list[ImputationQuery] = []

    pool_cursor = 0
    for query_index in range(num_queries):
        keys = vocab.synthetic_pool(num_keys, syllables=3)
        if example_key_pool is not None:
            # Frequent-token regime: example keys come from a vocabulary
            # shared with the background corpus (long posting lists), so
            # an unrestricted example search is expensive -- the setting
            # where BLEND's intermediate-result rewriting pays off.
            # Disjoint slices keep queries independent of each other.
            slice_end = pool_cursor + num_examples
            if slice_end > len(example_key_pool):
                raise ValueError(
                    "example_key_pool too small for "
                    f"{num_queries} x {num_examples} disjoint example keys"
                )
            keys = list(example_key_pool[pool_cursor:slice_end]) + keys[num_examples:]
            pool_cursor = slice_end
        mapping = {key: vocab.person_name() for key in keys}
        example_keys = keys[:num_examples]
        query_keys = keys[num_examples:]

        queries.append(
            ImputationQuery(
                name=f"{name}_q{query_index}",
                examples=tuple((k, mapping[k]) for k in example_keys),
                query_keys=tuple(query_keys),
                answers=tuple(mapping[k] for k in query_keys),
            )
        )

        for copy in range(complete_tables_per_query):
            rows = [
                (key, mapping[key], rng.randint(1, 99))
                for key in vocab.shuffled(keys)
            ]
            lake.add(
                Table(
                    f"{name}_q{query_index}_full{copy}",
                    ["key", "value", "count"],
                    rows,
                )
            )
        for copy in range(partial_tables_per_query):
            # Examples present, but almost no query keys -> weak candidate.
            covered = example_keys + query_keys[: max(1, len(query_keys) // 10)]
            rows = [(key, mapping[key], rng.randint(1, 99)) for key in covered]
            lake.add(
                Table(
                    f"{name}_q{query_index}_part{copy}",
                    ["key", "value", "count"],
                    rows,
                )
            )
        for copy in range(decoy_tables_per_query):
            # All example pairs, zero query keys, plus bulk filler rows.
            rows = [(key, mapping[key], rng.randint(1, 99)) for key in example_keys]
            rows += [
                (vocab.synthetic_word(4), vocab.person_name(), rng.randint(1, 99))
                for _ in range(decoy_rows)
            ]
            lake.add(
                Table(
                    f"{name}_q{query_index}_decoy{copy}",
                    ["key", "value", "count"],
                    vocab.shuffled(rows),
                )
            )

    return ImputationBenchmark(lake=lake, queries=queries)
