"""Correlation-discovery benchmark generator (Table VII workload).

Models the paper's NYC-open-data experiment: a lake of tables with a join
key column plus numeric columns, where some numeric columns are planted at
controlled Pearson correlation with a hidden per-key signal. A query is a
(join key, numeric target) column pair whose target follows the same
signal; the ground truth is the *exact* top-k |Pearson| over joined pairs.

Two key regimes reproduce the paper's two benchmarks:

* ``categorical`` keys (NYC (Cat.)) -- entity-name strings, the only
  regime the original QCR sketch supports;
* ``mixed`` keys (NYC (All)) -- half the queries use *numeric* join keys,
  which break the baseline's categorical-only hashing but work in BLEND.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Optional

from ..datalake import DataLake
from ..table import Table, normalize_cell, numeric_value
from .corpus import CorpusConfig, generate_corpus
from .vocabulary import Vocabulary


@dataclass(frozen=True)
class CorrelationQuery:
    """A (join key, numeric target) query column pair."""

    name: str
    keys: tuple
    targets: tuple[float, ...]
    key_is_numeric: bool

    def as_table(self) -> Table:
        return Table(self.name, ["key", "target"], list(zip(self.keys, self.targets)))


@dataclass
class CorrelationBenchmark:
    lake: DataLake
    queries: list[CorrelationQuery]

    def exact_correlations(self, query: CorrelationQuery) -> list[tuple[int, int, float]]:
        """``(table_id, column_id, |pearson|)`` for every joinable numeric
        column in the lake, computed exactly on joined value pairs."""
        target_by_key = {}
        for key, target in zip(query.keys, query.targets):
            token = normalize_cell(key)
            if token is not None:
                target_by_key.setdefault(token, target)
        results = []
        for table_id, table in enumerate(self.lake):
            numeric_flags = table.numeric_columns()
            for key_position in range(table.num_columns):
                if numeric_flags[key_position] and not query.key_is_numeric:
                    continue
                key_tokens = [normalize_cell(row[key_position]) for row in table.rows]
                matched = [
                    (row_index, target_by_key[token])
                    for row_index, token in enumerate(key_tokens)
                    if token in target_by_key
                ]
                if len(matched) < 3:
                    continue
                for column_id in range(table.num_columns):
                    if column_id == key_position or not numeric_flags[column_id]:
                        continue
                    xs, ys = [], []
                    for row_index, target in matched:
                        value = numeric_value(table.rows[row_index][column_id])
                        if value is not None:
                            xs.append(target)
                            ys.append(value)
                    coefficient = _pearson(xs, ys)
                    if coefficient is not None:
                        results.append((table_id, column_id, abs(coefficient)))
        return results

    def ground_truth(self, query: CorrelationQuery, k: int) -> list[int]:
        """Exact top-k table ids by best |Pearson| column."""
        best_per_table: dict[int, float] = {}
        for table_id, _, coefficient in self.exact_correlations(query):
            if coefficient > best_per_table.get(table_id, -1.0):
                best_per_table[table_id] = coefficient
        ranked = sorted(best_per_table.items(), key=lambda item: (-item[1], item[0]))
        return [table_id for table_id, _ in ranked[:k]]


def _pearson(xs: list[float], ys: list[float]) -> Optional[float]:
    n = len(xs)
    if n < 3:
        return None
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return None
    return cov / math.sqrt(var_x * var_y)


def make_correlation_benchmark(
    num_queries: int = 6,
    num_entities: int = 120,
    tables_per_query: int = 5,
    rows_per_table: int = 80,
    distractor_tables: int = 15,
    key_regime: Literal["categorical", "mixed"] = "categorical",
    seed: int = 17,
    name: str = "corr_bench",
) -> CorrelationBenchmark:
    """Build a correlation benchmark with planted correlation strengths.

    Per query: a hidden signal over an entity universe; lake tables carry
    numeric columns at correlation strengths {~1.0, ~0.9, ~0.7, ~0.4, ~0.0}
    against that signal, so exact ground-truth rankings are non-trivial.
    """
    vocab = Vocabulary(seed)
    rng = vocab.rng
    lake = generate_corpus(
        CorpusConfig(name=f"{name}_bg", num_tables=distractor_tables, seed=seed + 1)
    )
    queries: list[CorrelationQuery] = []

    for query_index in range(num_queries):
        key_is_numeric = key_regime == "mixed" and query_index % 2 == 1
        if key_is_numeric:
            entities = [10_000 + query_index * 1_000 + i for i in range(num_entities)]
        else:
            entities = vocab.synthetic_pool(num_entities, syllables=3)
        signal = {entity: rng.gauss(0.0, 1.0) for entity in entities}

        query_keys = vocab.shuffled(entities)[: rows_per_table]
        query_targets = tuple(
            round(signal[key] + rng.gauss(0.0, 0.05), 6) for key in query_keys
        )
        queries.append(
            CorrelationQuery(
                name=f"{name}_q{query_index}",
                keys=tuple(query_keys),
                targets=query_targets,
                key_is_numeric=key_is_numeric,
            )
        )

        strengths = [0.02, 0.3, 0.6, 0.95, 2.5]
        for table_index in range(tables_per_query):
            noise = strengths[table_index % len(strengths)]
            sign = -1.0 if table_index % 2 else 1.0
            keys = vocab.shuffled(entities)[: rows_per_table]
            rows = []
            for key in keys:
                correlated = sign * signal[key] + rng.gauss(0.0, noise)
                independent = rng.gauss(0.0, 1.0)
                rows.append((key, round(correlated, 6), round(independent, 6)))
            lake.add(
                Table(
                    f"{name}_q{query_index}_t{table_index}",
                    ["entity", "metric_a", "metric_b"],
                    rows,
                )
            )

    return CorrelationBenchmark(lake=lake, queries=queries)
