"""Data-lake substrate: table model, corpus container, CSV I/O, and
seeded benchmark generators with exact ground truth."""

from .datalake import DataLake, LakeStats
from .table import Table, normalize_cell, normalize_tokens

__all__ = ["DataLake", "LakeStats", "Table", "normalize_cell", "normalize_tokens"]
