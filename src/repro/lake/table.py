"""In-memory table model for data-lake corpora.

A :class:`Table` is schema-light, like real lake tables: named columns over
rows of mixed-type cells (``str | int | float | bool | None``). Column
types are *inferred*, not declared -- discovery operators decide how to
treat a column (e.g. the correlation seeker needs numeric columns, XASH
hashes the string form of every cell).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

import numpy as np

from ..errors import LakeError

Cell = Any  # str | int | float | bool | None

_INFINITIES = (float("inf"), float("-inf"))


def normalize_cell(value: Cell) -> Optional[str]:
    """Canonical string token for a cell, as indexed in ``AllTables``.

    Mirrors the tokenisation used by DataXFormer/MATE-style inverted
    indexes: lowercase, surrounding whitespace stripped, empty -> NULL.
    Numbers keep a minimal stable rendering (``3`` not ``3.0``).

    This scalar form is the per-cell *oracle*: :func:`normalize_tokens`
    is the batched kernel and must stay byte-identical to it (pinned by
    the adversarial-token and property parity suites).
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value or value in _INFINITIES:
            return None
        if value.is_integer():
            return str(int(value))
        return repr(value)
    if isinstance(value, int):
        return str(value)
    token = str(value).strip().lower()
    return token if token else None


# Exact-type dispatch kinds for the batched kernel. ``type()`` lookup
# (not isinstance) so subclasses of str/int/float -- whose __str__ may
# differ -- take the scalar oracle, and bool (a subclass of int) gets
# its own lane.
_KIND_NONE, _KIND_BOOL, _KIND_INT, _KIND_FLOAT, _KIND_STR, _KIND_OTHER = range(6)
_KIND_OF = {
    type(None): _KIND_NONE,
    bool: _KIND_BOOL,
    int: _KIND_INT,
    float: _KIND_FLOAT,
    str: _KIND_STR,
}
_INT64_MIN_FLOAT = float(-(2**63))
_INT64_MAX_FLOAT = float(2**63)
_BOOL_TOKENS = ("false", "true")


def _normalize_str_lane(vals: list) -> list:
    """``str.strip().lower()`` (empty -> None) over exactly-``str``
    cells, as two C-level ``map`` passes plus one falsy-to-None sweep
    (the empty string is the only falsy ``str``). Uses the *actual*
    Python string methods, so there is no fixed-width-dtype or
    simple-case-mapping parity hazard to guard against -- exact by
    construction."""
    return [t or None for t in map(str.lower, map(str.strip, vals))]


def _normalize_float_lane(out: np.ndarray, where: np.ndarray, vals: np.ndarray) -> None:
    """Float lane of the kernel: NaN/±inf -> None; integer-valued floats
    in int64 range render through ``astype(int64).astype(str)`` (equal
    to ``str(int(v))`` -- the conversion is exact, never rounding);
    finite non-integral floats render with a C-level ``map(repr, ...)``;
    integral floats beyond int64 (rare) take the scalar oracle, whose
    ``int(value)`` widening is exact at any magnitude."""
    data = vals.astype(np.float64)
    finite = np.isfinite(data)
    integral = finite & (data == np.floor(data))
    in_range = integral & (data >= _INT64_MIN_FLOAT) & (data < _INT64_MAX_FLOAT)
    if in_range.any():
        out[where[in_range]] = (
            data[in_range].astype(np.int64).astype("U20").astype(object)
        )
    fractional = finite & ~integral
    if fractional.any():
        out[where[fractional]] = list(map(repr, vals[fractional].tolist()))
    huge = integral & ~in_range
    if huge.any():
        out[where[huge]] = list(map(normalize_cell, vals[huge].tolist()))
    # ~finite slots stay None.


class _TokenizeMemo(dict):
    """Cell-value -> token memo driving the kernel's C-level ``map``
    pass: repeated cells (the common case in skewed lake distributions)
    resolve with one dict probe; first-seen values take ``__missing__``,
    which delegates to the :func:`normalize_cell` oracle.

    Exactness under Python's cross-type equality (``True == 1``,
    ``2 == 2.0``) is by *restriction*: no value comparing equal to 0 or
    1 is ever stored, so a lookup can never serve ``True`` the token of
    ``1`` (the bool/int duality guard pinned on ``_ValueMemo`` since
    PR 3), and only exact ``str``/``int``/``float`` keys are stored at
    all. Equal ``int``/``float`` pairs sharing a slot is sound: the
    oracle gives numerically equal integral values the same minimal
    rendering. The memo is still unsound for *lookups* of exotic types
    whose ``str()`` disagrees with an equal-comparing number
    (``Decimal('2.50') == 2.5`` would hit ``2.5``'s slot) -- callers
    must route such batches to :func:`_normalize_tokens_typed` instead,
    which :func:`normalize_tokens` does via its type pre-scan.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__()
        self[None] = None

    def __missing__(self, value) -> Optional[str]:
        token = normalize_cell(value)
        if type(value) in _MEMO_SAFE_TYPES and not (value == 0 or value == 1):
            self[value] = token
        return token


_MEMO_SAFE_TYPES = (str, int, float)
_MEMO_SAFE_KINDS = frozenset((str, int, float, bool, type(None)))


def normalize_tokens(cells: Sequence[Cell]) -> list[Optional[str]]:
    """Batched :func:`normalize_cell`: one token list for a flat cell
    sequence, byte-identical to ``[normalize_cell(v) for v in cells]``.

    Two lanes, both exact. The primary lane is a single C-level ``map``
    over a fresh :class:`_TokenizeMemo`, so skewed batches (real lake
    tables repeat tokens heavily) normalise at dict-probe speed; a type
    pre-scan admits only the standard cell types
    (``str``/``int``/``float``/``bool``/``None``), whose cross-type
    equality the memo handles exactly. Batches carrying anything else
    (unhashable cells, NumPy scalars, ``Decimal`` -- types whose
    equality can alias a memo slot their ``str()`` disagrees with) take
    :func:`_normalize_tokens_typed`, the NumPy type-dispatched bulk
    kernel, which hashes nothing and handles anything.
    """
    n = len(cells)
    if n < 32:
        return [normalize_cell(v) for v in cells]
    if set(map(type, cells)) <= _MEMO_SAFE_KINDS:
        return list(map(_TokenizeMemo().__getitem__, cells))
    return _normalize_tokens_typed(cells)


def _normalize_tokens_typed(cells: Sequence[Cell]) -> list[Optional[str]]:
    """NumPy type-dispatched form of :func:`normalize_tokens`, also
    byte-identical to the scalar oracle.

    Cells are dispatched by exact type (so subclasses with bespoke
    ``__str__`` still take the scalar oracle) into per-kind lanes that
    each run at C speed: bool -> "true"/"false", int -> ``map(str)``,
    float -> NumPy masks for NaN/±inf/integral plus exact int64
    rendering, str -> ``map(str.strip)``/``map(str.lower)``. The lanes
    use the same Python primitives as the oracle, just batched, so the
    kernel is exact and never merely close. No hashing anywhere: this is
    the lane that serves batches the memoised map cannot (unhashable
    cells), and the reference batch implementation the parity suites run
    against the oracle and the memo lane.
    """
    n = len(cells)
    if n < 32:
        return [normalize_cell(v) for v in cells]
    kind_of = _KIND_OF
    kinds = np.fromiter(
        (kind_of.get(t, _KIND_OTHER) for t in map(type, cells)),
        dtype=np.uint8,
        count=n,
    )
    arr = np.empty(n, dtype=object)
    arr[:] = cells
    out = np.full(n, None, dtype=object)

    mask = kinds == _KIND_BOOL
    if mask.any():
        out[mask] = [_BOOL_TOKENS[v] for v in arr[mask].tolist()]

    mask = kinds == _KIND_INT
    if mask.any():
        # map(str, ...) is exact for arbitrary-precision ints -- no
        # int64 narrowing on this lane.
        out[mask] = list(map(str, arr[mask].tolist()))

    mask = kinds == _KIND_FLOAT
    if mask.any():
        _normalize_float_lane(out, np.nonzero(mask)[0], arr[mask])

    mask = kinds == _KIND_STR
    if mask.any():
        out[mask] = _normalize_str_lane(arr[mask].tolist())

    mask = kinds == _KIND_OTHER
    if mask.any():
        out[mask] = list(map(normalize_cell, arr[mask].tolist()))

    return out.tolist()


def is_numeric_cell(value: Cell) -> bool:
    """True for int/float cells and numeric-looking strings."""
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return True
    if isinstance(value, str):
        try:
            float(value)
            return True
        except ValueError:
            return False
    return False


def numeric_value(value: Cell) -> Optional[float]:
    """The float value of a numeric cell, or None."""
    if value is None or isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        result = float(value)
        return None if result != result else result
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


class Table:
    """A named table: ordered column names plus row tuples."""

    def __init__(self, name: str, columns: Sequence[str], rows: Iterable[Sequence[Cell]]) -> None:
        if not name:
            raise LakeError("table name must be non-empty")
        self.name = name
        self.columns = list(columns)
        if len(set(self.columns)) != len(self.columns):
            raise LakeError(f"table {name!r} has duplicate column names")
        width = len(self.columns)
        self.rows: list[tuple] = []
        for row in rows:
            if len(row) != width:
                raise LakeError(
                    f"table {name!r}: row width {len(row)} != {width} columns"
                )
            self.rows.append(tuple(row))
        self._numeric_cache: Optional[list[bool]] = None
        self._token_cache: Optional[list[Optional[str]]] = None

    # -- shape ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self.num_rows}x{self.num_columns})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Table)
            and self.name == other.name
            and self.columns == other.columns
            and self.rows == other.rows
        )

    # -- access ------------------------------------------------------------------

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise LakeError(f"table {self.name!r} has no column {column!r}") from None

    def column_values(self, column: str) -> list[Cell]:
        """All cells of one column, in row order."""
        position = self.column_index(column)
        return [row[position] for row in self.rows]

    def iter_cells(self) -> Iterator[tuple[int, int, Cell]]:
        """Yield ``(row_id, column_id, value)`` for every cell."""
        for row_id, row in enumerate(self.rows):
            for column_id, value in enumerate(row):
                yield row_id, column_id, value

    def set_cell(self, row_id: int, column_id: int, value: Cell) -> None:
        """Mutate one cell in place, invalidating every derived cache
        (normalized tokens, numeric-column inference)."""
        if not 0 <= row_id < self.num_rows:
            raise LakeError(f"table {self.name!r} has no row {row_id}")
        if not 0 <= column_id < self.num_columns:
            raise LakeError(f"table {self.name!r} has no column id {column_id}")
        row = list(self.rows[row_id])
        row[column_id] = value
        self.rows[row_id] = tuple(row)
        self._numeric_cache = None
        self._token_cache = None

    # -- normalized-token cache -----------------------------------------------------

    def normalized_cells(self) -> list[Optional[str]]:
        """Every cell's :func:`normalize_cell` token, row-major, cached.

        Computed through the batched :func:`normalize_tokens` kernel
        (byte-identical to the scalar loop by contract); lifecycle
        re-adds and ``replace_table`` rebuilds hit the same table object
        repeatedly, so the tokens are computed once and reused
        (``Blend.add_table`` alone normalises twice without this: once
        for the index, once for the statistics). Invalidated by
        :meth:`set_cell`.
        """
        if self._token_cache is None:
            self._token_cache = normalize_tokens(
                [value for row in self.rows for value in row]
            )
        return self._token_cache

    def tokens_if_cached(self) -> Optional[list[Optional[str]]]:
        """The cached token list, or None -- consumers that only want the
        fast path (the bulk index build must not pin every table's tokens
        in memory) probe with this instead of :meth:`normalized_cells`."""
        return self._token_cache

    def project(self, columns: Sequence[str], name: Optional[str] = None) -> "Table":
        """A new table with only *columns* (in the given order)."""
        positions = [self.column_index(c) for c in columns]
        return Table(
            name or self.name,
            [self.columns[p] for p in positions],
            [tuple(row[p] for p in positions) for row in self.rows],
        )

    def head(self, n: int, name: Optional[str] = None) -> "Table":
        """The first *n* rows as a new table."""
        return Table(name or self.name, self.columns, self.rows[:n])

    # -- type inference -------------------------------------------------------------

    def numeric_columns(self) -> list[bool]:
        """Per column: is it numeric (>=80 % of non-null cells numeric,
        at least one non-null cell)? Cached."""
        if self._numeric_cache is None:
            flags = []
            for position in range(self.num_columns):
                non_null = 0
                numeric = 0
                for row in self.rows:
                    value = row[position]
                    if value is None:
                        continue
                    non_null += 1
                    if is_numeric_cell(value):
                        numeric += 1
                flags.append(non_null > 0 and numeric / non_null >= 0.8)
            self._numeric_cache = flags
        return self._numeric_cache

    def is_numeric_column(self, column: str) -> bool:
        return self.numeric_columns()[self.column_index(column)]

    # -- stats -------------------------------------------------------------------------

    def distinct_count(self, column: str) -> int:
        """Distinct non-null normalised tokens in a column."""
        tokens = {
            normalize_cell(v) for v in self.column_values(column)
        }
        tokens.discard(None)
        return len(tokens)
