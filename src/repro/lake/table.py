"""In-memory table model for data-lake corpora.

A :class:`Table` is schema-light, like real lake tables: named columns over
rows of mixed-type cells (``str | int | float | bool | None``). Column
types are *inferred*, not declared -- discovery operators decide how to
treat a column (e.g. the correlation seeker needs numeric columns, XASH
hashes the string form of every cell).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

from ..errors import LakeError

Cell = Any  # str | int | float | bool | None


def normalize_cell(value: Cell) -> Optional[str]:
    """Canonical string token for a cell, as indexed in ``AllTables``.

    Mirrors the tokenisation used by DataXFormer/MATE-style inverted
    indexes: lowercase, surrounding whitespace stripped, empty -> NULL.
    Numbers keep a minimal stable rendering (``3`` not ``3.0``).
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return None
        if value.is_integer():
            return str(int(value))
        return repr(value)
    if isinstance(value, int):
        return str(value)
    token = str(value).strip().lower()
    return token if token else None


def is_numeric_cell(value: Cell) -> bool:
    """True for int/float cells and numeric-looking strings."""
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return True
    if isinstance(value, str):
        try:
            float(value)
            return True
        except ValueError:
            return False
    return False


def numeric_value(value: Cell) -> Optional[float]:
    """The float value of a numeric cell, or None."""
    if value is None or isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        result = float(value)
        return None if result != result else result
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


class Table:
    """A named table: ordered column names plus row tuples."""

    def __init__(self, name: str, columns: Sequence[str], rows: Iterable[Sequence[Cell]]) -> None:
        if not name:
            raise LakeError("table name must be non-empty")
        self.name = name
        self.columns = list(columns)
        if len(set(self.columns)) != len(self.columns):
            raise LakeError(f"table {name!r} has duplicate column names")
        width = len(self.columns)
        self.rows: list[tuple] = []
        for row in rows:
            if len(row) != width:
                raise LakeError(
                    f"table {name!r}: row width {len(row)} != {width} columns"
                )
            self.rows.append(tuple(row))
        self._numeric_cache: Optional[list[bool]] = None
        self._token_cache: Optional[list[Optional[str]]] = None

    # -- shape ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self.num_rows}x{self.num_columns})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Table)
            and self.name == other.name
            and self.columns == other.columns
            and self.rows == other.rows
        )

    # -- access ------------------------------------------------------------------

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise LakeError(f"table {self.name!r} has no column {column!r}") from None

    def column_values(self, column: str) -> list[Cell]:
        """All cells of one column, in row order."""
        position = self.column_index(column)
        return [row[position] for row in self.rows]

    def iter_cells(self) -> Iterator[tuple[int, int, Cell]]:
        """Yield ``(row_id, column_id, value)`` for every cell."""
        for row_id, row in enumerate(self.rows):
            for column_id, value in enumerate(row):
                yield row_id, column_id, value

    def set_cell(self, row_id: int, column_id: int, value: Cell) -> None:
        """Mutate one cell in place, invalidating every derived cache
        (normalized tokens, numeric-column inference)."""
        if not 0 <= row_id < self.num_rows:
            raise LakeError(f"table {self.name!r} has no row {row_id}")
        if not 0 <= column_id < self.num_columns:
            raise LakeError(f"table {self.name!r} has no column id {column_id}")
        row = list(self.rows[row_id])
        row[column_id] = value
        self.rows[row_id] = tuple(row)
        self._numeric_cache = None
        self._token_cache = None

    # -- normalized-token cache -----------------------------------------------------

    def normalized_cells(self) -> list[Optional[str]]:
        """Every cell's :func:`normalize_cell` token, row-major, cached.

        Normalisation is the one scalar per-cell loop left on the
        indexing path; lifecycle re-adds and ``replace_table`` rebuilds
        hit the same table object repeatedly, so the tokens are computed
        once and reused (``Blend.add_table`` alone normalises twice
        without this: once for the index, once for the statistics).
        Invalidated by :meth:`set_cell`.
        """
        if self._token_cache is None:
            self._token_cache = [
                normalize_cell(value) for row in self.rows for value in row
            ]
        return self._token_cache

    def tokens_if_cached(self) -> Optional[list[Optional[str]]]:
        """The cached token list, or None -- consumers that only want the
        fast path (the bulk index build must not pin every table's tokens
        in memory) probe with this instead of :meth:`normalized_cells`."""
        return self._token_cache

    def project(self, columns: Sequence[str], name: Optional[str] = None) -> "Table":
        """A new table with only *columns* (in the given order)."""
        positions = [self.column_index(c) for c in columns]
        return Table(
            name or self.name,
            [self.columns[p] for p in positions],
            [tuple(row[p] for p in positions) for row in self.rows],
        )

    def head(self, n: int, name: Optional[str] = None) -> "Table":
        """The first *n* rows as a new table."""
        return Table(name or self.name, self.columns, self.rows[:n])

    # -- type inference -------------------------------------------------------------

    def numeric_columns(self) -> list[bool]:
        """Per column: is it numeric (>=80 % of non-null cells numeric,
        at least one non-null cell)? Cached."""
        if self._numeric_cache is None:
            flags = []
            for position in range(self.num_columns):
                non_null = 0
                numeric = 0
                for row in self.rows:
                    value = row[position]
                    if value is None:
                        continue
                    non_null += 1
                    if is_numeric_cell(value):
                        numeric += 1
                flags.append(non_null > 0 and numeric / non_null >= 0.8)
            self._numeric_cache = flags
        return self._numeric_cache

    def is_numeric_column(self, column: str) -> bool:
        return self.numeric_columns()[self.column_index(column)]

    # -- stats -------------------------------------------------------------------------

    def distinct_count(self, column: str) -> int:
        """Distinct non-null normalised tokens in a column."""
        tokens = {
            normalize_cell(v) for v in self.column_values(column)
        }
        tokens.discard(None)
        return len(tokens)
