"""BLEND's core: seekers, combiners, the Plan API, the optimizer, and the
execution engine."""

from .combiners import Combiner, Combiners, combiner_by_name, register_combiner
from .executor import NodeRun, PlanExecutor, PlanRunResult
from .optimizer import CostModel, ExecutionPlan, Optimizer
from .plan import Plan, PlanNode
from .results import ResultList, TableHit
from .semantic import SemanticIndex, SemanticSeeker
from .grammar import parse_plan
from .seekers import Rewrite, Seeker, SeekerContext, Seekers
from .system import Blend, multi_objective_plan, union_search_plan

__all__ = [
    "Combiner",
    "Combiners",
    "combiner_by_name",
    "register_combiner",
    "NodeRun",
    "PlanExecutor",
    "PlanRunResult",
    "CostModel",
    "ExecutionPlan",
    "Optimizer",
    "Plan",
    "PlanNode",
    "ResultList",
    "SemanticIndex",
    "SemanticSeeker",
    "TableHit",
    "parse_plan",
    "Rewrite",
    "Seeker",
    "SeekerContext",
    "Seekers",
    "Blend",
    "multi_objective_plan",
    "union_search_plan",
]
