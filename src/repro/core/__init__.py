"""BLEND's core: seekers, combiners, the Plan API, the optimizer, and the
execution engine."""

from .combiners import Combiner, Combiners, combiner_by_name, register_combiner
from .executor import NodeRun, PlanExecutor, PlanRunResult
from .hybrid import DiscoveryResult, HybridSeeker
from .optimizer import CostModel, ExecutionPlan, Optimizer
from .plan import Plan, PlanNode
from .results import ResultList, TableHit, fuse_rankings
from .semantic import SemanticIndex, SemanticSeeker
from .grammar import SEEKER_REGISTRY, SeekerSpec, parse_plan, register_seeker
from .seekers import Rewrite, Seeker, SeekerContext, Seekers
from .system import Blend, multi_objective_plan, union_search_plan

__all__ = [
    "Combiner",
    "Combiners",
    "combiner_by_name",
    "register_combiner",
    "NodeRun",
    "PlanExecutor",
    "PlanRunResult",
    "CostModel",
    "DiscoveryResult",
    "ExecutionPlan",
    "HybridSeeker",
    "Optimizer",
    "Plan",
    "PlanNode",
    "ResultList",
    "SEEKER_REGISTRY",
    "SeekerSpec",
    "SemanticIndex",
    "SemanticSeeker",
    "TableHit",
    "fuse_rankings",
    "parse_plan",
    "register_seeker",
    "Rewrite",
    "Seeker",
    "SeekerContext",
    "Seekers",
    "Blend",
    "multi_objective_plan",
    "union_search_plan",
]
