"""Ranked result sets exchanged between seekers and combiners.

Every operator in BLEND produces a :class:`ResultList`: table ids with
scores, ordered best-first. Scores are operator-specific (overlap counts
for SC/KW/MC, |QCR| for the correlation seeker, frequencies for Counter)
but always "higher is better", which is what makes set-based composition
well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional


@dataclass(frozen=True)
class TableHit:
    """One discovered table."""

    table_id: int
    score: float

    def __repr__(self) -> str:
        return f"TableHit({self.table_id}, {self.score:g})"


class ResultList:
    """An ordered, duplicate-free list of table hits."""

    __slots__ = ("_hits", "_by_id")

    def __init__(self, hits: Iterable[TableHit] = ()) -> None:
        self._hits: list[TableHit] = []
        self._by_id: dict[int, float] = {}
        for hit in hits:
            if hit.table_id in self._by_id:
                continue
            self._hits.append(hit)
            self._by_id[hit.table_id] = hit.score

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, float]]) -> "ResultList":
        return cls(TableHit(table_id, score) for table_id, score in pairs)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._hits)

    def __iter__(self) -> Iterator[TableHit]:
        return iter(self._hits)

    def __contains__(self, table_id: int) -> bool:
        return table_id in self._by_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ResultList) and self._hits == other._hits

    def __repr__(self) -> str:
        preview = ", ".join(repr(hit) for hit in self._hits[:5])
        suffix = ", ..." if len(self._hits) > 5 else ""
        return f"ResultList([{preview}{suffix}])"

    # -- accessors -----------------------------------------------------------

    def table_ids(self) -> list[int]:
        """Table ids best-first."""
        return [hit.table_id for hit in self._hits]

    def score_of(self, table_id: int) -> Optional[float]:
        return self._by_id.get(table_id)

    def top(self, k: int) -> "ResultList":
        """The best *k* hits (all hits when k exceeds the size)."""
        if k >= len(self._hits):
            return self
        return ResultList(self._hits[:k])

    def sorted_by_score(self) -> "ResultList":
        """Re-rank by (score desc, table id asc) -- deterministic."""
        return ResultList(
            sorted(self._hits, key=lambda hit: (-hit.score, hit.table_id))
        )
