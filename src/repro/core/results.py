"""Ranked result sets exchanged between seekers and combiners.

Every operator in BLEND produces a :class:`ResultList`: table ids with
scores, ordered best-first. Scores are operator-specific (overlap counts
for SC/KW/MC, |QCR| for the correlation seeker, frequencies for Counter)
but always "higher is better", which is what makes set-based composition
well-defined.

This module also defines the *mergeable partial* contract behind every
execution path -- serial, batched, and sharded. A seeker does not rank
directly: it emits a :class:`SeekerPartials` (per-group ``(table, score)``
arrays, or per-table counts), and :func:`merge_partials` turns one or
more such partials into the final :class:`ResultList`. Solo execution is
the degenerate one-shard merge, so a scatter-gather deployment that
merges K per-shard partials is byte-identical to a single process by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Sequence

import numpy as np

from ..errors import SeekerError


@dataclass(frozen=True)
class TableHit:
    """One discovered table."""

    table_id: int
    score: float

    def __repr__(self) -> str:
        return f"TableHit({self.table_id}, {self.score:g})"


class ResultList:
    """An ordered, duplicate-free list of table hits."""

    __slots__ = ("_hits", "_by_id")

    def __init__(self, hits: Iterable[TableHit] = ()) -> None:
        self._hits: list[TableHit] = []
        self._by_id: dict[int, float] = {}
        for hit in hits:
            if hit.table_id in self._by_id:
                continue
            self._hits.append(hit)
            self._by_id[hit.table_id] = hit.score

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, float]]) -> "ResultList":
        return cls(TableHit(table_id, score) for table_id, score in pairs)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._hits)

    def __iter__(self) -> Iterator[TableHit]:
        return iter(self._hits)

    def __contains__(self, table_id: int) -> bool:
        return table_id in self._by_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ResultList) and self._hits == other._hits

    def __repr__(self) -> str:
        preview = ", ".join(repr(hit) for hit in self._hits[:5])
        suffix = ", ..." if len(self._hits) > 5 else ""
        return f"ResultList([{preview}{suffix}])"

    # -- accessors -----------------------------------------------------------

    def table_ids(self) -> list[int]:
        """Table ids best-first."""
        return [hit.table_id for hit in self._hits]

    def score_of(self, table_id: int) -> Optional[float]:
        return self._by_id.get(table_id)

    def top(self, k: int) -> "ResultList":
        """The best *k* hits (all hits when k exceeds the size)."""
        if k >= len(self._hits):
            return self
        return ResultList(self._hits[:k])

    def sorted_by_score(self) -> "ResultList":
        """Re-rank by (score desc, table id asc) -- deterministic."""
        return ResultList(
            sorted(self._hits, key=lambda hit: (-hit.score, hit.table_id))
        )


# -- mergeable partial results -------------------------------------------------


RANKED = "ranked"
COUNTS = "counts"
RESOLVED = "resolved"
FUSED = "fused"

DEFAULT_RRF_K = 60.0

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_SCORES = np.empty(0, dtype=np.float64)


@dataclass(frozen=True)
class SeekerPartials:
    """The mergeable intermediate every seeker emits before ranking.

    Two kinds, matching the two ranking tails the seekers share:

    * ``"ranked"`` -- per-*group* rows ``(table_id, score[, group_key])``
      in best-first emission order, as produced by the SC/KW/C SQL
      statements and the semantic seeker: sorted by
      ``(score desc, table, group)`` and already cut at ``fetch`` rows.
      Merging concatenates, re-sorts on the same keys (stably, so each
      shard's emission order survives ties), re-cuts at ``fetch``, and
      collapses groups to tables via :func:`dedupe_ranked_groups`.
    * ``"counts"`` -- exact per-table validated-row counts (the MC
      seeker), *not* cut: merging sums counts per table id across
      partials before the global :func:`rank_table_counts` top-k.

    Partials are safe to merge across shards because every table lives
    wholly in one shard: per-table sums never split, and ties on
    ``(score, table)`` can only originate from a single shard, so a
    stable re-sort reproduces the single-process order exactly.

    A third kind, ``"resolved"``, wraps an already-final ranking verbatim
    (duck-typed seekers that implement only ``execute``); it round-trips
    through the degenerate one-partial merge unchanged but refuses
    cross-shard merging -- a seeker must emit real partials to shard.

    A fourth kind, ``"fused"``, is the hybrid seeker's partial: a tuple
    of named, weighted *lanes*, each wrapping an ordinary mergeable
    partial (``lanes``; ``table_ids``/``scores`` stay empty). Fusion is
    rank-based, and per-shard ranks are meaningless -- so the merge
    first merges every lane *across shards* with the standard tails
    above (each provably shard-invariant), then applies weighted
    reciprocal-rank fusion (``rrf_k``) to the globally-merged lane
    rankings. The fused ranking is a deterministic function of
    shard-invariant inputs, hence itself shard-invariant by
    construction. ``fetch`` is the per-lane merge depth.

    ``group_keys`` (e.g. ColumnId for SC) is carried when the producer
    has it cheaply; the merge does not need it -- rows that tie on
    ``(score, table)`` collapse to the same :class:`TableHit` regardless
    of intra-table order.
    """

    kind: str
    table_ids: np.ndarray = field(default_factory=lambda: _EMPTY_IDS)
    scores: np.ndarray = field(default_factory=lambda: _EMPTY_SCORES)
    group_keys: Optional[np.ndarray] = None
    fetch: Optional[int] = None
    lanes: Optional[tuple["FusionLane", ...]] = None
    rrf_k: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in (RANKED, COUNTS, RESOLVED, FUSED):
            raise SeekerError(f"unknown partials kind: {self.kind!r}")
        if len(self.table_ids) != len(self.scores):
            raise SeekerError("partials table_ids and scores must align")
        if self.kind == FUSED:
            if not self.lanes:
                raise SeekerError("fused partials require at least one lane")
            if self.fetch is None:
                raise SeekerError("fused partials require a lane merge depth (fetch)")
        elif self.lanes is not None:
            raise SeekerError(f"{self.kind!r} partials cannot carry fusion lanes")

    def __len__(self) -> int:
        if self.kind == FUSED:
            return sum(len(lane.partials) for lane in self.lanes)
        return len(self.table_ids)


@dataclass(frozen=True)
class FusionLane:
    """One weighted input of a fused partial: a named modality whose own
    mergeable partial feeds the reciprocal-rank fusion tail."""

    name: str
    weight: float
    partials: SeekerPartials

    def signature(self) -> tuple:
        """What must match across shards for lanes to merge."""
        return (self.name, self.weight, self.partials.kind)


def ranked_partials(
    rows: Iterable[Sequence[Any]],
    fetch: Optional[int],
    *,
    skip_none: bool = False,
) -> SeekerPartials:
    """Wrap best-first ``(table_id, score, ...)`` rows (a seeker's SQL
    output) as a ranked partial. ``skip_none`` drops NULL-score rows (the
    Correlation seeker's guard), applied here so shards never ship them."""
    ids: list[int] = []
    scores: list[float] = []
    for table_id, score, *_ in rows:
        if skip_none and score is None:
            continue
        ids.append(table_id)
        scores.append(float(score))
    return SeekerPartials(
        RANKED,
        np.asarray(ids, dtype=np.int64),
        np.asarray(scores, dtype=np.float64),
        fetch=fetch,
    )


def count_partials(
    table_ids: Sequence[int] | np.ndarray, counts: Sequence[int] | np.ndarray
) -> SeekerPartials:
    """Wrap exact per-table counts (the MC tail) as a counts partial."""
    return SeekerPartials(
        COUNTS,
        np.asarray(table_ids, dtype=np.int64),
        np.asarray(counts, dtype=np.float64),
    )


def resolved_partials(result: "ResultList") -> SeekerPartials:
    """Wrap an already-final ranking as a non-mergeable partial -- the
    compatibility path for seekers that implement only ``execute``."""
    return SeekerPartials(
        RESOLVED,
        np.fromiter((hit.table_id for hit in result), dtype=np.int64, count=len(result)),
        np.fromiter((hit.score for hit in result), dtype=np.float64, count=len(result)),
    )


def fused_partials(
    lanes: Sequence["FusionLane"],
    fetch: int,
    rrf_k: float = DEFAULT_RRF_K,
) -> SeekerPartials:
    """Wrap weighted per-lane partials as a fused partial (the hybrid
    seeker's emission). *fetch* is the depth each lane's global ranking
    is merged to before fusion."""
    return SeekerPartials(FUSED, fetch=fetch, lanes=tuple(lanes), rrf_k=float(rrf_k))


def fuse_rankings(
    lanes: Sequence[tuple[float, "ResultList"]],
    k: int,
    rrf_k: float = DEFAULT_RRF_K,
) -> ResultList:
    """Weighted reciprocal-rank fusion: ``score(t) = sum_l w_l / (rrf_k
    + rank_l(t))`` over the lanes where *t* appears (ranks are 1-based),
    ranked ``(score desc, table asc)`` and cut at *k*.

    Zero-weight lanes are skipped entirely, so a degenerate weighting
    (one lane carries all the mass) reproduces that lane's own table
    order exactly -- reciprocal rank is strictly decreasing in rank.
    Lanes accumulate in their given order, so the float sums (and hence
    the ranking) are bit-reproducible wherever the lane rankings are.
    """
    scores: dict[int, float] = {}
    for weight, ranking in lanes:
        if weight == 0.0:
            continue
        for rank, hit in enumerate(ranking, start=1):
            scores[hit.table_id] = scores.get(hit.table_id, 0.0) + weight / (
                rrf_k + rank
            )
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return ResultList(TableHit(table_id, score) for table_id, score in ranked[:k])


def merge_partials(partials: Sequence[SeekerPartials], k: int) -> ResultList:
    """The single ranking tail: merge per-shard partials into the final
    top-k :class:`ResultList`.

    With one partial this is exactly the seeker's old serial tail; with K
    it is the scatter-gather coordinator's global merge. Counts partials
    sum per table id (exact in int64 -- scores are integral row counts)
    before :func:`rank_table_counts`; ranked partials concatenate,
    stable-sort on ``(score desc, table)``, re-cut at ``fetch``, and
    collapse through :func:`dedupe_ranked_groups`. Per-shard ``fetch``
    cuts lose nothing globally: the global top-``fetch`` groups are a
    subset of the union of per-shard top-``fetch`` groups.
    """
    parts = [p for p in partials if p is not None and len(p)]
    if not parts:
        return ResultList([])
    kinds = {p.kind for p in parts}
    if len(kinds) != 1:
        raise SeekerError(f"cannot merge partials of mixed kinds: {sorted(kinds)}")
    kind = kinds.pop()

    if kind == FUSED:
        signatures = {
            (tuple(lane.signature() for lane in p.lanes), p.rrf_k, p.fetch)
            for p in parts
        }
        if len(signatures) != 1:
            raise SeekerError(
                "cannot merge fused partials with diverging lane structure: "
                f"{sorted(map(str, signatures))}"
            )
        template = parts[0]
        fused_lanes: list[tuple[float, ResultList]] = []
        for index, lane in enumerate(template.lanes):
            # Each lane merges across shards through its own standard
            # tail first; fusion only ever sees *global* lane rankings.
            lane_ranking = merge_partials(
                [p.lanes[index].partials for p in parts], template.fetch
            )
            fused_lanes.append((lane.weight, lane_ranking))
        rrf_k = template.rrf_k if template.rrf_k is not None else DEFAULT_RRF_K
        return fuse_rankings(fused_lanes, k, rrf_k=rrf_k)

    if kind == RESOLVED:
        if len(parts) > 1:
            raise SeekerError(
                "resolved partials carry a final ranking and cannot be "
                "merged across shards; the seeker must implement partials()"
            )
        part = parts[0]
        return ResultList(
            TableHit(int(table_id), float(score))
            for table_id, score in zip(part.table_ids, part.scores)
        )

    if kind == COUNTS:
        ids = np.concatenate([p.table_ids for p in parts])
        tallies = np.concatenate(
            [p.scores.astype(np.int64) for p in parts]
        )
        unique_ids, inverse = np.unique(ids, return_inverse=True)
        sums = np.zeros(len(unique_ids), dtype=np.int64)
        np.add.at(sums, inverse, tallies)
        return rank_table_counts(unique_ids, sums, k)

    fetches = {p.fetch for p in parts}
    if len(fetches) != 1:
        raise SeekerError(f"cannot merge partials with mixed fetch cuts: {sorted(map(str, fetches))}")
    fetch = fetches.pop()
    ids = np.concatenate([p.table_ids for p in parts])
    scores = np.concatenate([p.scores for p in parts])
    order = np.lexsort((ids, -scores))
    if fetch is not None:
        order = order[:fetch]
    return dedupe_ranked_groups(
        ((int(ids[i]), float(scores[i])) for i in order), k
    )


def dedupe_ranked_groups(
    rows: Iterable[Sequence[Any]], k: int, *, skip_none: bool = False
) -> ResultList:
    """Collapse ranked *group* rows to ranked *tables*: first (best) hit
    per table wins, cut at *k*.

    The shared tail of every per-(table, column)-grouped seeker, invoked
    through :func:`merge_partials` -- and the reason seeker results are
    mergeable partials rather than opaque top-k lists: per-shard ranked
    group streams, re-sorted on the same ``(score desc, table)`` keys and
    fed through this cut, reproduce a single-node ranking exactly.

    *rows* yields ``(table_id, score, ...)`` best-first; ``skip_none``
    drops rows whose score is NULL (the Correlation seeker's guard).
    """
    hits: list[TableHit] = []
    seen: set[int] = set()
    for table_id, score, *_ in rows:
        if skip_none and score is None:
            continue
        if table_id not in seen:
            seen.add(table_id)
            hits.append(TableHit(table_id, float(score)))
        if len(hits) == k:
            break
    return ResultList(hits)


def rank_table_counts(
    table_ids: Sequence[int] | np.ndarray,
    counts: Sequence[int] | np.ndarray,
    k: int,
) -> ResultList:
    """Rank per-table validated-row counts: ``(count desc, table asc)``,
    top *k* -- the counts-kind tail of :func:`merge_partials` (per-shard
    counts of one table simply add before ranking)."""
    ids = np.asarray(table_ids, dtype=np.int64)
    tallies = np.asarray(counts, dtype=np.int64)
    if len(ids) == 0:
        return ResultList([])
    ranked = np.lexsort((ids, -tallies))
    return ResultList(
        TableHit(int(ids[i]), float(tallies[i])) for i in ranked[:k]
    )
