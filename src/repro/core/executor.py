"""Plan execution engine (paper Fig. 2d).

Walks an :class:`~.optimizer.planner.ExecutionPlan` node by node: seekers
run as SQL in the database (with optimizer rewrites resolved against the
intermediate results of already-executed siblings), combiners merge
result lists in the application layer. Per-node timings are recorded for
the optimizer experiments (Table IV) and the complex-task comparisons
(Table III).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..errors import PlanError
from .optimizer.planner import ExecutionPlan, RewriteSpec
from .plan import Plan
from .results import ResultList
from .seekers import Rewrite, Seeker, SeekerContext


@dataclass
class NodeRun:
    """Execution record of one plan node."""

    name: str
    result: ResultList
    seconds: float
    rewrite: Optional[RewriteSpec] = None


@dataclass
class PlanRunResult:
    """Execution record of a whole plan."""

    output: ResultList
    node_runs: dict[str, NodeRun] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    total_seconds: float = 0.0

    def result_of(self, name: str) -> ResultList:
        try:
            return self.node_runs[name].result
        except KeyError:
            raise PlanError(f"plan has no executed node {name!r}") from None


class PlanExecutor:
    """Executes optimized (or unoptimized) discovery plans."""

    def __init__(self, context: SeekerContext) -> None:
        self._context = context

    def run(self, plan: Plan, execution_plan: ExecutionPlan) -> PlanRunResult:
        plan.validate()
        if sorted(execution_plan.order) != sorted(n.name for n in plan.nodes()):
            raise PlanError("execution plan does not cover exactly the plan's nodes")

        results: dict[str, ResultList] = {}
        runs: dict[str, NodeRun] = {}
        start = time.perf_counter()
        for name in execution_plan.order:
            node = plan.node(name)
            began = time.perf_counter()
            if node.is_seeker:
                seeker = node.operator
                assert isinstance(seeker, Seeker)
                spec = execution_plan.rewrites.get(name)
                rewrite = self._resolve_rewrite(spec, results) if spec else None
                result = seeker.execute(self._context, rewrite)
            else:
                missing = [i for i in node.inputs if i not in results]
                if missing:
                    raise PlanError(
                        f"combiner {name!r} scheduled before its inputs {missing}"
                    )
                result = node.operator.combine([results[i] for i in node.inputs])
            elapsed = time.perf_counter() - began
            results[name] = result
            runs[name] = NodeRun(
                name=name,
                result=result,
                seconds=elapsed,
                rewrite=execution_plan.rewrites.get(name),
            )
        total = time.perf_counter() - start

        sinks = plan.sinks()
        output = results[sinks[0].name] if len(sinks) == 1 else results[execution_plan.order[-1]]
        return PlanRunResult(
            output=output,
            node_runs=runs,
            order=list(execution_plan.order),
            total_seconds=total,
        )

    def _resolve_rewrite(
        self, spec: RewriteSpec, results: dict[str, ResultList]
    ) -> Rewrite:
        """Turn a rewrite schedule entry into a concrete predicate using
        the intermediate results executed so far."""
        missing = [s for s in spec.source_nodes if s not in results]
        if missing:
            raise PlanError(f"rewrite sources not yet executed: {missing}")
        id_sets = [set(results[s].table_ids()) for s in spec.source_nodes]
        if spec.mode == "intersect":
            # Restrict to tables every previous sibling found.
            table_ids = set.intersection(*id_sets) if id_sets else set()
        elif spec.mode == "difference":
            # Exclude every table the subtrahend found.
            table_ids = set.union(*id_sets) if id_sets else set()
        else:
            raise PlanError(f"unknown rewrite mode: {spec.mode}")
        return Rewrite(mode=spec.mode, table_ids=tuple(sorted(table_ids)))
