"""The discovery-language grammar of paper §IV-C, as an executable DSL.

The paper defines::

    expression ::= seeker(Q) | combiner(expression(,expression)+)
    seeker     ::= KW | SC | MC | C
    combiner   ::= ∩ | ∪ | \\ | Counter
    Q          ::= keyword | table

This module parses that grammar (with both the set symbols and spelled
names) into a :class:`~.plan.Plan`. Query inputs are bound by name::

    plan = parse_plan(
        "∩(\\\\(MC($pos), MC($neg)), SC($departments))",
        bindings={
            "pos": [("hr", "firenze")],
            "neg": [("it", "tom riddle")],
            "departments": ["hr", "it", "finance"],
        },
        k=10,
    )
    result = blend.run(plan)

Every sub-expression may carry a ``k=<int>`` argument overriding the
default, e.g. ``SC($departments, k=50)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..errors import PlanError
from .combiners import Combiners
from .plan import Plan
from .seekers import Seekers

_SEEKER_NAMES = {"KW", "SC", "MC", "C"}
_COMBINER_ALIASES = {
    "∩": "Intersect",
    "∪": "Union",
    "\\": "Difference",
    "intersect": "Intersect",
    "union": "Union",
    "difference": "Difference",
    "counter": "Counter",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "name" | "symbol" | "ref" | "int" | "eof"
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "(),=":
            tokens.append(_Token("symbol", ch, i))
            i += 1
            continue
        if ch in "∩∪\\":
            tokens.append(_Token("name", ch, i))
            i += 1
            continue
        if ch == "$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise PlanError(f"'$' must introduce a binding name (position {i})")
            tokens.append(_Token("ref", text[i + 1 : j], i))
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(_Token("int", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(_Token("name", text[i:j], i))
            i = j
            continue
        raise PlanError(f"unexpected character {ch!r} in plan expression (position {i})")
    tokens.append(_Token("eof", "", n))
    return tokens


class _Parser:
    def __init__(
        self,
        tokens: list[_Token],
        bindings: Mapping[str, Any],
        default_k: int,
    ) -> None:
        self._tokens = tokens
        self._pos = 0
        self._bindings = bindings
        self._default_k = default_k
        self._plan = Plan()
        self._counter = 0

    def parse(self) -> Plan:
        self._parse_expression()  # builds self._plan as it recurses
        if self._peek().kind != "eof":
            token = self._peek()
            raise PlanError(
                f"unexpected trailing input {token.value!r} (position {token.position})"
            )
        return self._plan

    # -- helpers -----------------------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect_symbol(self, symbol: str) -> None:
        token = self._advance()
        if token.kind != "symbol" or token.value != symbol:
            raise PlanError(
                f"expected {symbol!r}, found {token.value!r} (position {token.position})"
            )

    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # -- grammar ------------------------------------------------------------------

    def _parse_expression(self) -> str:
        """Parse one expression; returns the plan-node name it defines."""
        token = self._advance()
        if token.kind != "name":
            raise PlanError(
                f"expected a seeker or combiner, found {token.value!r} "
                f"(position {token.position})"
            )
        name = token.value
        if name in _SEEKER_NAMES:
            return self._parse_seeker(name)
        canonical = _COMBINER_ALIASES.get(name) or _COMBINER_ALIASES.get(name.lower())
        if canonical is not None:
            return self._parse_combiner(canonical)
        raise PlanError(
            f"unknown operator {name!r}; seekers are {sorted(_SEEKER_NAMES)}, "
            "combiners are Intersect/Union/Difference/Counter (or ∩ ∪ \\)"
        )

    def _parse_seeker(self, kind: str) -> str:
        self._expect_symbol("(")
        token = self._advance()
        if token.kind != "ref":
            raise PlanError(
                f"seeker {kind} expects a $binding argument "
                f"(position {token.position})"
            )
        if token.value not in self._bindings:
            raise PlanError(f"unbound plan input: ${token.value}")
        query = self._bindings[token.value]
        k = self._parse_optional_k()
        self._expect_symbol(")")

        if kind == "SC":
            operator = Seekers.SC(query, k=k)
        elif kind == "KW":
            operator = Seekers.KW(query, k=k)
        elif kind == "MC":
            operator = Seekers.MC(query, k=k)
        else:  # C: query binds (keys, targets)
            try:
                keys, targets = query
            except (TypeError, ValueError):
                raise PlanError(
                    "the C seeker's binding must be a (keys, targets) pair"
                ) from None
            operator = Seekers.Correlation(keys, targets, k=k)
        node_name = self._fresh_name(kind.lower())
        self._plan.add(node_name, operator)
        return node_name

    def _parse_combiner(self, kind: str) -> str:
        self._expect_symbol("(")
        inputs = [self._parse_expression()]
        k: Optional[int] = None
        while True:
            token = self._peek()
            if token.kind == "symbol" and token.value == ",":
                self._advance()
                # Either another sub-expression or a trailing k=...
                if (
                    self._peek().kind == "name"
                    and self._peek().value == "k"
                    and self._tokens[self._pos + 1].value == "="
                ):
                    k = self._parse_k_value()
                    break
                inputs.append(self._parse_expression())
                continue
            break
        self._expect_symbol(")")
        combiner_class = getattr(Combiners, kind)
        node_name = self._fresh_name(kind.lower())
        self._plan.add(node_name, combiner_class(k=k if k is not None else self._default_k), inputs)
        return node_name

    def _parse_optional_k(self) -> int:
        token = self._peek()
        if token.kind == "symbol" and token.value == ",":
            self._advance()
            return self._parse_k_value()
        return self._default_k

    def _parse_k_value(self) -> int:
        token = self._advance()
        if token.kind != "name" or token.value != "k":
            raise PlanError(f"expected k=<int> (position {token.position})")
        self._expect_symbol("=")
        value = self._advance()
        if value.kind != "int":
            raise PlanError(f"k must be an integer (position {value.position})")
        return int(value.value)


def parse_plan(
    expression: str,
    bindings: Mapping[str, Any],
    k: int = 10,
) -> Plan:
    """Parse a §IV-C grammar expression into an executable :class:`Plan`.

    ``bindings`` maps ``$name`` references to query inputs: a value list
    for SC/KW, a tuple list for MC, and a ``(keys, targets)`` pair for C.
    ``k`` is the default top-k for every operator without an explicit
    ``k=<int>`` argument.
    """
    if not expression.strip():
        raise PlanError("empty plan expression")
    parser = _Parser(_tokenize(expression), bindings, k)
    return parser.parse()
