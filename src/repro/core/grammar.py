"""The discovery-language grammar of paper §IV-C, as an executable DSL.

The paper defines::

    expression ::= seeker(Q) | combiner(expression(,expression)+)
    seeker     ::= KW | SC | MC | C
    combiner   ::= ∩ | ∪ | \\ | Counter
    Q          ::= keyword | table

This module parses that grammar (with both the set symbols and spelled
names) into a :class:`~.plan.Plan`. Query inputs are bound by name::

    plan = parse_plan(
        "∩(\\\\(MC($pos), MC($neg)), SC($departments))",
        bindings={
            "pos": [("hr", "firenze")],
            "neg": [("it", "tom riddle")],
            "departments": ["hr", "it", "finance"],
        },
        k=10,
    )
    result = blend.run(plan)

Every sub-expression may carry a ``k=<int>`` argument overriding the
default, e.g. ``SC($departments, k=50)``.

Seekers are resolved through :data:`SEEKER_REGISTRY` -- a by-name table
of :class:`SeekerSpec` entries -- so new modalities register with
:func:`register_seeker` instead of patching the parser. Registered specs
may declare extra keyword arguments (``$ref``, int, float, or
true/false), which is how the mixed semantic predicates parse::

    SS($topic, k=20)                       # pure semantic search
    HY($cities, about=$topic, alpha=0.5)   # joinable on X AND about Y
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from ..errors import PlanError
from .combiners import Combiners
from .hybrid import HybridSeeker
from .plan import Plan
from .seekers import Seekers
from .semantic import SemanticSeeker


@dataclass(frozen=True)
class SeekerSpec:
    """One registered seeker modality: how a grammar name becomes an
    operator. ``builder(query, k=..., **keywords)`` receives the bound
    ``$ref`` query plus any declared keyword arguments."""

    name: str
    builder: Callable[..., Any]
    keywords: tuple[str, ...] = ()


SEEKER_REGISTRY: dict[str, SeekerSpec] = {}


def register_seeker(
    name: str,
    builder: Callable[..., Any],
    keywords: tuple[str, ...] = (),
    replace: bool = False,
) -> SeekerSpec:
    """Register a seeker modality under *name* (grammar v2). Future
    modalities plug in here without touching the tokenizer or parser."""
    if not name or not all(ch.isalnum() or ch == "_" for ch in name):
        raise PlanError(f"seeker name {name!r} is not a grammar identifier")
    if name in SEEKER_REGISTRY and not replace:
        raise PlanError(f"seeker {name!r} is already registered")
    spec = SeekerSpec(name=name, builder=builder, keywords=tuple(keywords))
    SEEKER_REGISTRY[name] = spec
    return spec


def _build_correlation(query: Any, k: int) -> Any:
    try:
        keys, targets = query
    except (TypeError, ValueError):
        raise PlanError(
            "the C seeker's binding must be a (keys, targets) pair"
        ) from None
    return Seekers.Correlation(keys, targets, k=k)


register_seeker("KW", lambda query, k: Seekers.KW(query, k=k))
register_seeker("SC", lambda query, k: Seekers.SC(query, k=k))
register_seeker("MC", lambda query, k: Seekers.MC(query, k=k))
register_seeker("C", _build_correlation)
register_seeker(
    "SS",
    lambda query, k, exact=False: SemanticSeeker(query, k=k, exact=bool(exact)),
    keywords=("exact",),
)
register_seeker(
    "HY",
    lambda query, k, about=None, alpha=0.5, exact=True: HybridSeeker(
        query, about=about, k=k, alpha=float(alpha), exact=bool(exact)
    ),
    keywords=("about", "alpha", "exact"),
)

_COMBINER_ALIASES = {
    "∩": "Intersect",
    "∪": "Union",
    "\\": "Difference",
    "intersect": "Intersect",
    "union": "Union",
    "difference": "Difference",
    "counter": "Counter",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "name" | "symbol" | "ref" | "int" | "float" | "eof"
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "(),=":
            tokens.append(_Token("symbol", ch, i))
            i += 1
            continue
        if ch in "∩∪\\":
            tokens.append(_Token("name", ch, i))
            i += 1
            continue
        if ch == "$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise PlanError(f"'$' must introduce a binding name (position {i})")
            tokens.append(_Token("ref", text[i + 1 : j], i))
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
                tokens.append(_Token("float", text[i:j], i))
            else:
                tokens.append(_Token("int", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(_Token("name", text[i:j], i))
            i = j
            continue
        raise PlanError(f"unexpected character {ch!r} in plan expression (position {i})")
    tokens.append(_Token("eof", "", n))
    return tokens


class _Parser:
    def __init__(
        self,
        tokens: list[_Token],
        bindings: Mapping[str, Any],
        default_k: int,
    ) -> None:
        self._tokens = tokens
        self._pos = 0
        self._bindings = bindings
        self._default_k = default_k
        self._plan = Plan()
        self._counter = 0

    def parse(self) -> Plan:
        self._parse_expression()  # builds self._plan as it recurses
        if self._peek().kind != "eof":
            token = self._peek()
            raise PlanError(
                f"unexpected trailing input {token.value!r} (position {token.position})"
            )
        return self._plan

    # -- helpers -----------------------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect_symbol(self, symbol: str) -> None:
        token = self._advance()
        if token.kind != "symbol" or token.value != symbol:
            raise PlanError(
                f"expected {symbol!r}, found {token.value!r} (position {token.position})"
            )

    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # -- grammar ------------------------------------------------------------------

    def _parse_expression(self) -> str:
        """Parse one expression; returns the plan-node name it defines."""
        token = self._advance()
        if token.kind != "name":
            raise PlanError(
                f"expected a seeker or combiner, found {token.value!r} "
                f"(position {token.position})"
            )
        name = token.value
        spec = SEEKER_REGISTRY.get(name)
        if spec is not None:
            return self._parse_seeker(spec)
        canonical = _COMBINER_ALIASES.get(name) or _COMBINER_ALIASES.get(name.lower())
        if canonical is not None:
            return self._parse_combiner(canonical)
        raise PlanError(
            f"unknown operator {name!r} (position {token.position}); "
            f"registered seekers are {sorted(SEEKER_REGISTRY)}, "
            "combiners are Intersect/Union/Difference/Counter (or ∩ ∪ \\)"
        )

    def _parse_seeker(self, spec: SeekerSpec) -> str:
        self._expect_symbol("(")
        token = self._advance()
        if token.kind != "ref":
            raise PlanError(
                f"seeker {spec.name} expects a $binding argument "
                f"(position {token.position})"
            )
        if token.value not in self._bindings:
            raise PlanError(
                f"unbound plan input: ${token.value} (position {token.position}); "
                f"bound names are {sorted(self._bindings)}"
            )
        query = self._bindings[token.value]
        k = self._default_k
        keywords: dict[str, Any] = {}
        while True:
            token = self._peek()
            if not (token.kind == "symbol" and token.value == ","):
                break
            self._advance()
            name_token = self._advance()
            if name_token.kind != "name":
                raise PlanError(
                    f"expected <name>=<value> argument, found {name_token.value!r} "
                    f"(position {name_token.position})"
                )
            if name_token.value != "k" and name_token.value not in spec.keywords:
                accepted = ["k", *spec.keywords]
                raise PlanError(
                    f"seeker {spec.name} does not accept argument "
                    f"{name_token.value!r} (position {name_token.position}); "
                    f"accepted arguments are {accepted}"
                )
            self._expect_symbol("=")
            if name_token.value == "k":
                value = self._advance()
                if value.kind != "int":
                    raise PlanError(f"k must be an integer (position {value.position})")
                k = int(value.value)
            else:
                keywords[name_token.value] = self._parse_argument_value()
        self._expect_symbol(")")
        operator = spec.builder(query, k=k, **keywords)
        node_name = self._fresh_name(spec.name.lower())
        self._plan.add(node_name, operator)
        return node_name

    def _parse_argument_value(self) -> Any:
        """A seeker keyword value: ``$ref`` (bound input), int, float, or
        ``true``/``false``."""
        token = self._advance()
        if token.kind == "ref":
            if token.value not in self._bindings:
                raise PlanError(
                    f"unbound plan input: ${token.value} "
                    f"(position {token.position}); "
                    f"bound names are {sorted(self._bindings)}"
                )
            return self._bindings[token.value]
        if token.kind == "int":
            return int(token.value)
        if token.kind == "float":
            return float(token.value)
        if token.kind == "name" and token.value.lower() in ("true", "false"):
            return token.value.lower() == "true"
        raise PlanError(
            f"argument values are $refs, numbers, or true/false; "
            f"found {token.value!r} (position {token.position})"
        )

    def _parse_combiner(self, kind: str) -> str:
        self._expect_symbol("(")
        inputs = [self._parse_expression()]
        k: Optional[int] = None
        while True:
            token = self._peek()
            if token.kind == "symbol" and token.value == ",":
                self._advance()
                # Either another sub-expression or a trailing k=...
                if (
                    self._peek().kind == "name"
                    and self._peek().value == "k"
                    and self._tokens[self._pos + 1].value == "="
                ):
                    k = self._parse_k_value()
                    break
                inputs.append(self._parse_expression())
                continue
            break
        self._expect_symbol(")")
        combiner_class = getattr(Combiners, kind)
        node_name = self._fresh_name(kind.lower())
        self._plan.add(node_name, combiner_class(k=k if k is not None else self._default_k), inputs)
        return node_name

    def _parse_k_value(self) -> int:
        token = self._advance()
        if token.kind != "name" or token.value != "k":
            raise PlanError(f"expected k=<int> (position {token.position})")
        self._expect_symbol("=")
        value = self._advance()
        if value.kind != "int":
            raise PlanError(f"k must be an integer (position {value.position})")
        return int(value.value)


def parse_plan(
    expression: str,
    bindings: Mapping[str, Any],
    k: int = 10,
) -> Plan:
    """Parse a §IV-C grammar expression into an executable :class:`Plan`.

    ``bindings`` maps ``$name`` references to query inputs: a value list
    for SC/KW, a tuple list for MC, and a ``(keys, targets)`` pair for C.
    ``k`` is the default top-k for every operator without an explicit
    ``k=<int>`` argument.
    """
    if not expression.strip():
        raise PlanError("empty plan expression")
    parser = _Parser(_tokenize(expression), bindings, k)
    return parser.parse()
