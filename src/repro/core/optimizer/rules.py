"""Rule-based seeker ranking (paper §VII-B).

Derived from the apriori complexity analysis of the SQL implementations:

* **Rule 1** -- the KW seeker always executes first (one index scan,
  smallest |Q|).
* **Rule 2** -- the MC seeker always executes last (x index scans, x-1
  hash joins, plus application-level validation).
* **Rule 3** -- SC is prioritised over C (one scan vs three).

Within a rule tier (same seeker type), the learned cost model breaks the
tie; with an untrained model the heuristic fallback applies. Sorting is
stable, so equal estimates keep plan order -- determinism matters for
reproducing the optimizer experiments.
"""

from __future__ import annotations

from typing import Sequence

from ...index.stats import LakeStatistics
from ..seekers import SEEKER_RULE_RANK, Seeker
from .cost_model import CostModel


def rule_rank(seeker: Seeker) -> int:
    """The rule tier of a seeker type (lower executes earlier)."""
    return SEEKER_RULE_RANK.get(seeker.kind, len(SEEKER_RULE_RANK))


def rank_seekers(
    named_seekers: Sequence[tuple[str, Seeker]],
    cost_model: CostModel,
    stats: LakeStatistics,
) -> list[str]:
    """Execution order for the seekers of one execution group: rule tier
    first, learned cost estimate second (stable)."""
    decorated = [
        (rule_rank(seeker), cost_model.estimate(seeker, stats), position, name)
        for position, (name, seeker) in enumerate(named_seekers)
    ]
    decorated.sort(key=lambda item: (item[0], item[1], item[2]))
    return [name for _, _, _, name in decorated]
