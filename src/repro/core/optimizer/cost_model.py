"""Learning-based cost estimation (paper §VII-B).

For seekers of the same type, expected runtime is estimated by a linear
regression per seeker type over three features:

1. cardinality of Q (number of query tokens),
2. number of columns in Q,
3. average frequency of Q's values in the lake (for MC: the *product* of
   per-column average frequencies, because the MC SQL joins the per-column
   index hits).

Training is offline: random query columns are sampled from the lake, each
seeker is executed, and wall-clock runtimes become the regression targets
(least squares via NumPy). Prediction is part of online optimization.
Untrained models fall back to a complexity-based heuristic so the
optimizer degrades gracefully (rule ranking still applies).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...index.stats import LakeStatistics
from ...lake.datalake import DataLake
from ..seekers import (
    CorrelationSeeker,
    KeywordSeeker,
    MultiColumnSeeker,
    Seeker,
    SeekerContext,
    SingleColumnSeeker,
)


@dataclass(frozen=True)
class SeekerFeatures:
    """The cost model's input vector for one seeker instance."""

    cardinality: float
    columns: float
    average_frequency: float

    def as_row(self) -> list[float]:
        return [1.0, self.cardinality, self.columns, self.average_frequency]


def extract_features(seeker: Seeker, stats: LakeStatistics) -> SeekerFeatures:
    """Features of *seeker* against lake statistics.

    MC's frequency feature multiplies per-column averages (see module
    docstring); other seekers use the plain average over all tokens.
    """
    if isinstance(seeker, MultiColumnSeeker):
        product = 1.0
        for position in range(seeker.width):
            tokens = seeker.column_tokens(position)
            product *= max(1.0, stats.average_frequency(tokens))
        frequency = product
    else:
        frequency = stats.average_frequency(seeker.query_tokens())
    return SeekerFeatures(
        cardinality=float(seeker.query_cardinality()),
        columns=float(seeker.query_columns()),
        average_frequency=float(frequency),
    )


@dataclass
class LinearModel:
    """One per-seeker-type least-squares regression."""

    weights: np.ndarray  # shape (4,): bias, cardinality, columns, frequency

    def predict(self, features: SeekerFeatures) -> float:
        return float(np.dot(self.weights, np.array(features.as_row())))

    @classmethod
    def fit(cls, rows: list[SeekerFeatures], runtimes: list[float]) -> "LinearModel":
        if len(rows) < 2:
            raise ValueError("need at least two samples to fit a cost model")
        design = np.array([row.as_row() for row in rows], dtype=np.float64)
        target = np.array(runtimes, dtype=np.float64)
        weights, *_ = np.linalg.lstsq(design, target, rcond=None)
        return cls(weights=weights)


# Heuristic fallback multipliers mirror the apriori complexity analysis of
# §VII-B: KW ~ one scan, SC ~ one scan with a larger |Q|, C ~ three scans,
# MC ~ x scans + joins + application-level validation. SS probes the
# vector index instead of AllTables (sub-scan cost); HY runs one exact
# lane plus one SS lane and fuses.
_FALLBACK_MULTIPLIER = {"KW": 1.0, "SC": 1.0, "SS": 0.5, "C": 3.0, "HY": 2.0, "MC": 6.0}


class CostModel:
    """Per-seeker-type runtime regressions with a heuristic fallback."""

    def __init__(self, models: Optional[dict[str, LinearModel]] = None) -> None:
        self._models = dict(models or {})

    def is_trained(self, kind: Optional[str] = None) -> bool:
        if kind is None:
            return bool(self._models)
        return kind in self._models

    def estimate(self, seeker: Seeker, stats: LakeStatistics) -> float:
        """Expected runtime (arbitrary units; only the ordering matters)."""
        features = extract_features(seeker, stats)
        model = self._models.get(seeker.kind)
        if model is not None:
            return model.predict(features)
        multiplier = _FALLBACK_MULTIPLIER.get(seeker.kind, 1.0)
        # Anchor the heuristic's arbitrary units to the corpus' posting
        # density (AllTables rows per distinct token): a collision-heavy
        # lake makes every probed token drag proportionally more index
        # rows into the scan. A corpus-wide factor, so same-stats
        # orderings are unchanged -- it matters when estimates are
        # compared across lakes (and keeps the maintained aggregates of
        # LakeStatistics load-bearing).
        density = max(1.0, stats.average_posting_length())
        return multiplier * density * (
            features.cardinality * max(1.0, features.average_frequency)
            + features.columns
        )

    def set_model(self, kind: str, model: LinearModel) -> None:
        self._models[kind] = model

    # -- snapshots -----------------------------------------------------------------

    def snapshot_state(self) -> dict[str, list[float]]:
        """The trained regressions as plain JSON-able weights (one
        4-vector per seeker type) -- what a snapshot manifest carries so
        a loaded deployment optimizes exactly like the saved one."""
        return {
            kind: model.weights.tolist() for kind, model in sorted(self._models.items())
        }

    @classmethod
    def from_snapshot(cls, state: dict[str, list[float]]) -> "CostModel":
        return cls(
            {
                kind: LinearModel(np.asarray(weights, dtype=np.float64))
                for kind, weights in state.items()
            }
        )


@dataclass
class TrainingReport:
    """What offline training produced."""

    samples_per_type: dict[str, int] = field(default_factory=dict)
    training_seconds: float = 0.0


def train_cost_model(
    context: SeekerContext,
    stats: LakeStatistics,
    lake: DataLake,
    samples_per_type: int = 40,
    seed: int = 0,
    k: int = 10,
) -> tuple[CostModel, TrainingReport]:
    """Offline training loop: sample random Qs from the lake, execute each
    seeker type, fit the regressions (paper: 1000 samples; the default
    here is laptop-scale and configurable)."""
    rng = random.Random(seed)
    start = time.perf_counter()
    model = CostModel()
    report = TrainingReport()

    generators = {
        "SC": lambda: _random_sc(lake, rng, k),
        "KW": lambda: _random_kw(lake, rng, k),
        "MC": lambda: _random_mc(lake, rng, k),
        "C": lambda: _random_c(lake, rng, k),
    }
    for kind, make in generators.items():
        rows: list[SeekerFeatures] = []
        runtimes: list[float] = []
        attempts = 0
        while len(rows) < samples_per_type and attempts < samples_per_type * 10:
            attempts += 1
            seeker = make()
            if seeker is None:
                continue
            begin = time.perf_counter()
            seeker.execute(context)
            elapsed = time.perf_counter() - begin
            rows.append(extract_features(seeker, stats))
            runtimes.append(elapsed)
        if len(rows) >= 2:
            model.set_model(kind, LinearModel.fit(rows, runtimes))
        report.samples_per_type[kind] = len(rows)
    report.training_seconds = time.perf_counter() - start
    return model, report


# -- random query sampling (one helper per seeker type) -----------------------


def _random_table(lake: DataLake, rng: random.Random):
    if len(lake) == 0:
        return None
    # Sample over live ids: lakes that lived through removals have holes,
    # so a plain randrange over len(lake) would miss high ids and could
    # hit dead ones. Consumes one rng draw either way (seed-stable).
    ids = lake.table_ids()
    return lake.by_id(ids[rng.randrange(len(ids))])


def _random_sc(lake: DataLake, rng: random.Random, k: int) -> Optional[Seeker]:
    table = _random_table(lake, rng)
    if table is None or table.num_rows == 0:
        return None
    position = rng.randrange(table.num_columns)
    values = [row[position] for row in table.rows if row[position] is not None]
    if len(values) < 2:
        return None
    size = rng.randint(2, min(len(values), 50))
    try:
        return SingleColumnSeeker(rng.sample(values, size), k=k)
    except Exception:
        return None


def _random_kw(lake: DataLake, rng: random.Random, k: int) -> Optional[Seeker]:
    table = _random_table(lake, rng)
    if table is None or table.num_rows == 0:
        return None
    cells = [v for _, _, v in table.iter_cells() if isinstance(v, str)]
    if len(cells) < 2:
        return None
    size = rng.randint(1, min(len(cells), 8))
    try:
        return KeywordSeeker(rng.sample(cells, size), k=k)
    except Exception:
        return None


def _random_mc(lake: DataLake, rng: random.Random, k: int) -> Optional[Seeker]:
    table = _random_table(lake, rng)
    if table is None or table.num_columns < 2 or table.num_rows < 2:
        return None
    columns = rng.sample(range(table.num_columns), 2)
    rows = [
        tuple(row[c] for c in columns)
        for row in table.rows
        if all(row[c] is not None for c in columns)
    ]
    if len(rows) < 2:
        return None
    size = rng.randint(2, min(len(rows), 10))
    try:
        return MultiColumnSeeker(rng.sample(rows, size), k=k)
    except Exception:
        return None


def _random_c(lake: DataLake, rng: random.Random, k: int) -> Optional[Seeker]:
    table = _random_table(lake, rng)
    if table is None or table.num_rows < 4 or table.num_columns < 2:
        return None
    numeric = table.numeric_columns()
    numeric_positions = [i for i, flag in enumerate(numeric) if flag]
    if not numeric_positions:
        return None
    target_position = rng.choice(numeric_positions)
    key_candidates = [i for i in range(table.num_columns) if i != target_position]
    key_position = rng.choice(key_candidates)
    keys = [row[key_position] for row in table.rows]
    targets = [row[target_position] for row in table.rows]
    try:
        return CorrelationSeeker(keys, targets, k=k, h=256)
    except Exception:
        return None
