"""Execution-group (EG) identification (paper §VII-B).

An execution group is a set of seekers whose relative order may change
without altering the plan's output. Per the paper, only seekers feeding
the same **Intersection** combiner form a reorderable EG (Difference is
non-commutative; Union and Counter gain nothing from reordering).
Difference still yields a *fixed-order* group -- the subtrahend runs
first so the minuend's query can be rewritten with ``TableId NOT IN``.

A seeker consumed by more than one combiner is never grouped: rewriting
its SQL for one consumer would corrupt the other consumer's input
(Theorem 1 safety).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..combiners import Difference, Intersect
from ..plan import Plan, PlanNode


@dataclass(frozen=True)
class ExecutionGroup:
    """Seekers attached to one combiner node.

    ``reorderable`` is True for Intersection groups (rule + cost ranking
    applies); Difference groups have a fixed execution order (subtrahend
    first) encoded by ``fixed_order``.

    ``prior_inputs`` lists the combiner's *non-seeker* inputs (sub-plan
    results). For Intersection they are additional rewrite sources: their
    results are plain reads, so even shared sub-plans can safely restrict
    the group's seekers once they have executed.
    """

    combiner_name: str
    seeker_names: tuple[str, ...]
    rewrite_mode: str  # "intersect" | "difference"
    reorderable: bool
    fixed_order: tuple[str, ...] = ()
    prior_inputs: tuple[str, ...] = ()


def identify_groups(plan: Plan) -> list[ExecutionGroup]:
    """All EGs of *plan*, in combiner insertion order."""
    groups: list[ExecutionGroup] = []
    for node in plan.nodes():
        if not node.is_combiner:
            continue
        if isinstance(node.operator, Intersect):
            seekers = _exclusive_seeker_inputs(plan, node)
            non_seekers = tuple(
                name for name in node.inputs if not plan.node(name).is_seeker
            )
            # A group is useful with two reorderable seekers, or with one
            # seeker that earlier sub-plan results can restrict.
            if len(seekers) >= 2 or (seekers and non_seekers):
                groups.append(
                    ExecutionGroup(
                        combiner_name=node.name,
                        seeker_names=tuple(seekers),
                        rewrite_mode="intersect",
                        reorderable=True,
                        prior_inputs=non_seekers,
                    )
                )
        elif isinstance(node.operator, Difference):
            seekers = _exclusive_seeker_inputs(plan, node)
            # Both inputs must be seekers for the NOT IN rewrite: the
            # subtrahend (second input) executes first.
            if len(seekers) == 2 and seekers == list(node.inputs):
                groups.append(
                    ExecutionGroup(
                        combiner_name=node.name,
                        seeker_names=tuple(seekers),
                        rewrite_mode="difference",
                        reorderable=False,
                        fixed_order=(node.inputs[1], node.inputs[0]),
                    )
                )
    return groups


def _exclusive_seeker_inputs(plan: Plan, combiner: PlanNode) -> list[str]:
    """Input seekers of *combiner* that no other node also consumes."""
    names = []
    for input_name in combiner.inputs:
        input_node = plan.node(input_name)
        if not input_node.is_seeker:
            continue
        if len(plan.consumers_of(input_name)) != 1:
            continue
        names.append(input_name)
    return names
