"""The two-phase plan optimizer: execution groups, rule ranking, learned
cost estimation, and the rewrite schedule."""

from .cost_model import (
    CostModel,
    LinearModel,
    SeekerFeatures,
    TrainingReport,
    extract_features,
    train_cost_model,
)
from .groups import ExecutionGroup, identify_groups
from .planner import ExecutionPlan, Optimizer, RewriteSpec
from .rules import rank_seekers, rule_rank

__all__ = [
    "CostModel",
    "LinearModel",
    "SeekerFeatures",
    "TrainingReport",
    "extract_features",
    "train_cost_model",
    "ExecutionGroup",
    "identify_groups",
    "ExecutionPlan",
    "Optimizer",
    "RewriteSpec",
    "rank_seekers",
    "rule_rank",
]
