"""The BLEND plan optimizer: EGs -> ranking -> rewrite schedule (§VII-B).

Produces an :class:`ExecutionPlan`: a topological node order with the
seekers of each execution group re-ranked (rules + cost model) and a
rewrite annotation per seeker saying which earlier siblings' intermediate
results restrict its SQL (``TableId IN`` for Intersection groups,
``TableId NOT IN`` for Difference groups). The actual table-id lists are
resolved at execution time by :mod:`..executor`.

Reproduction note on Theorem 1 (output preservation). With per-seeker
top-k truncation, the Intersection rewrite computes each later seeker's
top-k *within* the earlier siblings' tables rather than globally, so the
optimized intersection can be a **superset** of the unoptimized one
(strictly more complete, never less). The two coincide exactly whenever
k does not truncate any seeker's candidate set. Both properties are
verified by ``tests/core/test_optimizer_semantics.py``; the paper's
Theorem 1 proof implicitly assumes the no-truncation regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...index.stats import LakeStatistics
from ..plan import Plan
from ..seekers import Seeker
from .cost_model import CostModel
from .groups import ExecutionGroup, identify_groups
from .rules import rank_seekers


@dataclass(frozen=True)
class RewriteSpec:
    """How a seeker's SQL gets restricted at execution time."""

    mode: str  # "intersect" | "difference"
    source_nodes: tuple[str, ...]  # earlier nodes whose results feed the predicate


@dataclass
class ExecutionPlan:
    """Optimizer output: node order plus per-seeker rewrite schedule."""

    order: list[str]
    rewrites: dict[str, RewriteSpec] = field(default_factory=dict)
    groups: list[ExecutionGroup] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable summary (used by examples and debugging)."""
        lines = [f"execution order: {' -> '.join(self.order)}"]
        for name, spec in self.rewrites.items():
            predicate = "IN" if spec.mode == "intersect" else "NOT IN"
            lines.append(
                f"  {name}: TableId {predicate} results of {list(spec.source_nodes)}"
            )
        return "\n".join(lines)


class Optimizer:
    """Two-phase plan optimizer (rule-based + learned cost)."""

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = cost_model or CostModel()

    def optimize(self, plan: Plan, stats: LakeStatistics) -> ExecutionPlan:
        """Compute the optimized execution plan for *plan*."""
        plan.validate()
        base_order = [node.name for node in plan.topological_order()]
        groups = identify_groups(plan)

        order = list(base_order)
        rewrites: dict[str, RewriteSpec] = {}
        for group in groups:
            if group.reorderable:
                named = [
                    (name, plan.node(name).operator) for name in group.seeker_names
                ]
                ranked = rank_seekers(
                    [(name, seeker) for name, seeker in named if isinstance(seeker, Seeker)],
                    self.cost_model,
                    stats,
                )
            else:
                ranked = list(group.fixed_order)
            # Place the ranked seekers into the slots their group members
            # occupy in the base order (seekers have no inter-dependencies,
            # so any permutation within those slots stays topological).
            slots = sorted(order.index(name) for name in group.seeker_names)
            for slot, name in zip(slots, ranked):
                order[slot] = name
            # Delay group seekers past the combiner's sub-plan inputs so
            # those results can restrict them. Legal: an exclusive group
            # seeker's only consumer is the group combiner, which follows
            # every group input in any topological order.
            if group.prior_inputs:
                last_prior = max(order.index(p) for p in group.prior_inputs)
                for name in ranked:
                    current = order.index(name)
                    if current < last_prior:
                        order.insert(last_prior, order.pop(current))
                        last_prior = max(order.index(p) for p in group.prior_inputs)
            # Rewrite schedule: each seeker is restricted by all group
            # members already executed -- earlier sibling seekers plus
            # (for Intersection) the combiner's sub-plan inputs that the
            # topological order placed before it.
            position_of = {name: index for index, name in enumerate(order)}
            for position, name in enumerate(ranked):
                earlier_siblings = tuple(ranked[:position])
                earlier_priors = tuple(
                    prior
                    for prior in group.prior_inputs
                    if position_of[prior] < position_of[name]
                )
                sources = earlier_priors + earlier_siblings
                if sources:
                    rewrites[name] = RewriteSpec(
                        mode=group.rewrite_mode,
                        source_nodes=sources,
                    )
        return ExecutionPlan(order=order, rewrites=rewrites, groups=groups)

    @staticmethod
    def unoptimized(plan: Plan) -> ExecutionPlan:
        """B-NO: insertion order, no rewrites (the paper's baseline)."""
        plan.validate()
        return ExecutionPlan(order=[node.name for node in plan.nodes()])
