"""Combiner operators (paper §IV-B): set composition of seeker results.

Combiners receive table collections (seeker or combiner outputs) and merge
them with a set operation. Users can register new combiners at runtime
(``register_combiner``), as the paper allows.

Score semantics (scores are operator-local; "higher is better"):

* ``Intersect`` -- tables present in *all* inputs; scored by the sum of
  their per-input scores.
* ``Union`` -- tables present in *any* input; scored by the sum of scores
  where present.
* ``Difference`` -- tables of the first input absent from the second;
  first input's scores and order are kept.
* ``Counter`` -- tables scored by how many inputs contain them (the
  union-search aggregator of §VII-A).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import CombinerError
from .results import ResultList, TableHit


class Combiner:
    """Base class for set-composition operators."""

    kind: str = "?"
    min_inputs: int = 2
    max_inputs: Optional[int] = None  # None = unbounded
    commutative: bool = False
    rewrite_mode: Optional[str] = None  # predicate kind injected into siblings

    def __init__(self, k: int = 10) -> None:
        if k < 0:
            raise CombinerError("k must be non-negative")
        self.k = k

    def validate_arity(self, count: int) -> None:
        if count < self.min_inputs:
            raise CombinerError(
                f"{self.kind} combiner needs at least {self.min_inputs} inputs, got {count}"
            )
        if self.max_inputs is not None and count > self.max_inputs:
            raise CombinerError(
                f"{self.kind} combiner accepts at most {self.max_inputs} inputs, got {count}"
            )

    def combine(self, inputs: Sequence[ResultList]) -> ResultList:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k={self.k})"


class Intersect(Combiner):
    """Tables present in every input."""

    kind = "Intersect"
    commutative = True
    rewrite_mode = "intersect"

    def combine(self, inputs: Sequence[ResultList]) -> ResultList:
        self.validate_arity(len(inputs))
        common = set(inputs[0].table_ids())
        for result in inputs[1:]:
            common &= set(result.table_ids())
        scored = [
            TableHit(
                table_id,
                sum(result.score_of(table_id) or 0.0 for result in inputs),
            )
            for table_id in common
        ]
        return ResultList(
            sorted(scored, key=lambda hit: (-hit.score, hit.table_id))
        ).top(self.k)


class Union(Combiner):
    """Tables present in any input."""

    kind = "Union"
    commutative = True
    rewrite_mode = None  # paper: "Union: No rewriting"

    def combine(self, inputs: Sequence[ResultList]) -> ResultList:
        self.validate_arity(len(inputs))
        scores: dict[int, float] = {}
        for result in inputs:
            for hit in result:
                scores[hit.table_id] = scores.get(hit.table_id, 0.0) + hit.score
        return ResultList(
            sorted(
                (TableHit(table_id, score) for table_id, score in scores.items()),
                key=lambda hit: (-hit.score, hit.table_id),
            )
        ).top(self.k)


class Difference(Combiner):
    """Tables of the first input not in the second (non-commutative,
    exactly two inputs)."""

    kind = "Difference"
    min_inputs = 2
    max_inputs = 2
    commutative = False
    rewrite_mode = "difference"

    def combine(self, inputs: Sequence[ResultList]) -> ResultList:
        self.validate_arity(len(inputs))
        keep, drop = inputs
        dropped = set(drop.table_ids())
        return ResultList(hit for hit in keep if hit.table_id not in dropped).top(self.k)


class Counter(Combiner):
    """Tables ranked by the number of inputs containing them.

    The union-search plan feeds one SC seeker per query column into a
    Counter: tables matching many columns rank above tables matching one,
    which is exactly column-overlap unionability.
    """

    kind = "Counter"
    min_inputs = 1
    commutative = True
    rewrite_mode = None

    def combine(self, inputs: Sequence[ResultList]) -> ResultList:
        self.validate_arity(len(inputs))
        counts: dict[int, int] = {}
        tie_scores: dict[int, float] = {}
        for result in inputs:
            for hit in result:
                counts[hit.table_id] = counts.get(hit.table_id, 0) + 1
                tie_scores[hit.table_id] = tie_scores.get(hit.table_id, 0.0) + hit.score
        ranked = sorted(
            counts,
            key=lambda table_id: (-counts[table_id], -tie_scores[table_id], table_id),
        )
        return ResultList(
            TableHit(table_id, float(counts[table_id])) for table_id in ranked
        ).top(self.k)


class Combiners:
    """The paper's API namespace: ``Combiners.Intersect(k=10)`` etc."""

    Intersect = Intersect
    Union = Union
    Difference = Difference
    Counter = Counter


_REGISTRY: dict[str, type[Combiner]] = {
    "intersect": Intersect,
    "union": Union,
    "difference": Difference,
    "counter": Counter,
}


def register_combiner(name: str, combiner_class: type[Combiner]) -> None:
    """Register a user-defined combiner ("the user can introduce new
    combiners to the system", §IV-B). Name lookup is case-insensitive."""
    if not issubclass(combiner_class, Combiner):
        raise CombinerError("combiner classes must derive from Combiner")
    key = name.lower()
    if key in _REGISTRY and _REGISTRY[key] is not combiner_class:
        raise CombinerError(f"combiner name {name!r} is already registered")
    _REGISTRY[key] = combiner_class


def combiner_by_name(name: str) -> type[Combiner]:
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise CombinerError(f"unknown combiner: {name!r}") from None
