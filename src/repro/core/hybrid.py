"""Hybrid semantic+exact discovery: the fusion seeker (ROADMAP item 2).

BLEND's grammar (§IV-C) composes seekers set-wise; the closest related
work (SeDa-style unified discovery) instead *fuses* modalities into one
ranked answer: "joinable on X AND semantically about Y". This module
promotes that to a first-class seeker:

* :class:`HybridSeeker` (kind ``HY``) pairs one exact-overlap lane
  (SC, KW or MC over ``AllTables``) with one semantic lane
  (:class:`~repro.core.semantic.SemanticSeeker` over ``AllVectors``)
  and fuses their rankings with weighted reciprocal-rank fusion
  (:func:`~repro.core.results.fuse_rankings`);
* it emits a standard mergeable partial (kind ``"fused"``), so solo,
  batched (:mod:`repro.core.batch`) and sharded
  (:mod:`repro.serving.sharded`) execution all fall out of the existing
  ``merge_partials`` tail. Fusion is rank-based and per-shard ranks are
  meaningless, so the fused partial carries both lanes' *sub-partials*
  and the merge fuses only after each lane has been globally merged --
  with the deterministic ``exact=True`` semantic lane (the default
  here), hybrid results are byte-identical for any shard count by
  construction;
* a learned-weight mode derives the lane weights from the trained
  :class:`~repro.core.optimizer.cost_model.CostModel`: each lane's
  weight is the inverse of its predicted runtime over the same
  ``(cardinality, columns, average_frequency)`` features the optimizer
  already uses -- the regression's runtime curve tracks how much index
  mass a lane's query drags in, so expensive (low-selectivity) lanes
  are down-weighted relative to sharp ones.

:class:`DiscoveryResult` is the typed answer of the unified
``Blend.discover()`` facade, which routes every discovery modality
(keyword / join / multi-column / semantic / hybrid) through this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..errors import SeekerError
from ..lake.table import Cell, Table
from .results import (
    DEFAULT_RRF_K,
    FusionLane,
    ResultList,
    SeekerPartials,
    fused_partials,
)
from .seekers import Rewrite, Seeker, SeekerContext, Seekers
from .semantic import SemanticSeeker

# How much deeper than k each lane's global ranking is merged before
# fusion: tables ranked [k, LANE_DEPTH*k) in one lane can still reach the
# fused top-k through their other-lane rank.
LANE_DEPTH = 4

_EXACT_KINDS = ("SC", "KW", "MC")


def _is_row_query(values: Any) -> bool:
    """Multi-column query shapes (a Table or rows of cells) take the MC
    exact lane; flat value lists take SC/KW."""
    if isinstance(values, Table):
        return True
    probe = next(iter(values), None)
    return isinstance(probe, (tuple, list))


def _flatten_values(values: Any) -> list[Cell]:
    """Default semantic-lane topic: every cell of the exact query."""
    if isinstance(values, Table):
        return [cell for row in values.rows for cell in row]
    flat: list[Cell] = []
    for item in values:
        if isinstance(item, (tuple, list)):
            flat.extend(item)
        else:
            flat.append(item)
    return flat


class HybridSeeker(Seeker):
    """HY: weighted reciprocal-rank fusion of one exact-overlap lane and
    one semantic lane -- "joinable on X AND semantically about Y".

    ``alpha`` balances the lanes (0 = pure exact, 1 = pure semantic);
    explicit ``weights=(exact, semantic)`` overrides it, and
    :meth:`calibrate` replaces both with cost-model-derived weights.
    ``about`` supplies the semantic topic; left ``None``, the exact
    query's own values are embedded. ``exact=True`` (default) runs the
    semantic lane brute-force, the deterministic mode whose sharded
    merge is byte-identical to solo execution at any scale.
    """

    kind = "HY"

    def __init__(
        self,
        values: Iterable[Cell] | Iterable[Sequence[Cell]] | Table,
        about: Optional[Iterable[Cell]] = None,
        k: int = 10,
        alpha: float = 0.5,
        rrf_k: float = DEFAULT_RRF_K,
        weights: Optional[tuple[float, float]] = None,
        exact: bool = True,
        exact_kind: Optional[str] = None,
    ) -> None:
        super().__init__(k)
        if not 0.0 <= alpha <= 1.0:
            raise SeekerError(f"alpha must be in [0, 1], got {alpha}")
        if rrf_k <= 0:
            raise SeekerError(f"rrf_k must be positive, got {rrf_k}")
        materialized = values if isinstance(values, Table) else list(values)
        if exact_kind is None:
            exact_kind = "MC" if _is_row_query(materialized) else "SC"
        if exact_kind not in _EXACT_KINDS:
            raise SeekerError(
                f"unknown exact lane {exact_kind!r}; one of {_EXACT_KINDS}"
            )
        self.alpha = float(alpha)
        self.rrf_k = float(rrf_k)
        self.exact = exact
        self.exact_kind = exact_kind
        self.lane_depth = max(self.k, self.k * LANE_DEPTH)
        builder = getattr(Seekers, exact_kind)
        self.exact_seeker = builder(materialized, k=self.lane_depth)
        topic = list(about) if about is not None else _flatten_values(materialized)
        self.semantic_seeker = SemanticSeeker(topic, k=self.lane_depth, exact=exact)
        if weights is None:
            weights = (1.0 - self.alpha, self.alpha)
        self._set_weights(weights)

    def _set_weights(self, weights: tuple[float, float]) -> None:
        exact_weight, semantic_weight = (float(w) for w in weights)
        if exact_weight < 0 or semantic_weight < 0:
            raise SeekerError("fusion weights must be non-negative")
        if exact_weight == 0 and semantic_weight == 0:
            raise SeekerError("at least one fusion weight must be positive")
        self.weights = (exact_weight, semantic_weight)

    def calibrate(self, cost_model, stats) -> "HybridSeeker":
        """Learned-weight mode: replace the alpha-derived weights with
        weights inversely proportional to each lane's cost-model runtime
        estimate (normalised to sum to 1). Deterministic given the model
        and statistics; call before execution so solo/batched/sharded
        paths all fuse with the same weights. Returns self."""
        estimates = [
            max(cost_model.estimate(seeker, stats), 1e-12)
            for seeker in (self.exact_seeker, self.semantic_seeker)
        ]
        inverse = [1.0 / estimate for estimate in estimates]
        total = sum(inverse)
        self._set_weights((inverse[0] / total, inverse[1] / total))
        return self

    # -- execution ---------------------------------------------------------------

    def sql(self, rewrite: Optional[Rewrite] = None) -> str:
        return self.exact_seeker.sql(rewrite)

    def params(self, rewrite: Optional[Rewrite] = None) -> dict:
        return self.exact_seeker.params(rewrite)

    def partials(
        self, context: SeekerContext, rewrite: Optional[Rewrite] = None
    ) -> SeekerPartials:
        """Both lanes' partials over this context's shard, wrapped as one
        fused partial.

        Rewrites are NOT pushed into the lanes: fusion is rank-based, and
        pre-filtering a lane shifts the surviving tables' ranks -- the
        optimizer would change fused scores. Like the semantic seeker,
        the hybrid honours rewrites by post-filtering its final fused
        ranking instead (see :meth:`execute`); the batched and sharded
        paths never carry rewrites into partials."""
        if rewrite is not None:
            raise SeekerError(
                "hybrid partials cannot carry a rewrite; rewrites post-filter "
                "the fused ranking in execute()"
            )
        exact_weight, semantic_weight = self.weights
        return fused_partials(
            (
                FusionLane("exact", exact_weight, self.exact_seeker.partials(context)),
                FusionLane("semantic", semantic_weight, self.semantic_seeker.partials(context)),
            ),
            fetch=self.lane_depth,
            rrf_k=self.rrf_k,
        )

    def execute(
        self, context: SeekerContext, rewrite: Optional[Rewrite] = None
    ) -> ResultList:
        """Solo execution: the degenerate one-partial merge. A rewrite is
        applied by post-filtering the fused ranking (fused scores and the
        survivors' relative order are exactly what an unoptimized run
        produces -- the approximate-operator contract of the semantic
        module, lifted to the fusion tail)."""
        from .results import merge_partials

        if rewrite is None:
            return merge_partials([self.partials(context)], self.k)
        deep = merge_partials([self.partials(context)], self.lane_depth)
        allowed = set(rewrite.table_ids)
        if rewrite.mode == "intersect":
            hits = [hit for hit in deep if hit.table_id in allowed]
        elif rewrite.mode == "difference":
            hits = [hit for hit in deep if hit.table_id not in allowed]
        else:
            raise SeekerError(f"unknown rewrite mode: {rewrite.mode}")
        return ResultList(hits[: self.k])

    # -- cost-model features (paper §VII-B) ----------------------------------------

    def query_cardinality(self) -> int:
        return self.exact_seeker.query_cardinality()

    def query_columns(self) -> int:
        return self.exact_seeker.query_columns()

    def query_tokens(self) -> list[str]:
        tokens = list(self.exact_seeker.query_tokens())
        seen = set(tokens)
        for token in self.semantic_seeker.query_tokens():
            if token not in seen:
                seen.add(token)
                tokens.append(token)
        return tokens


@dataclass(frozen=True)
class DiscoveryResult:
    """The typed answer of ``Blend.discover()``: one fused output ranking
    plus the per-modality rankings it was fused from."""

    query: Any
    modalities: tuple[str, ...]
    k: int
    output: ResultList
    per_modality: Mapping[str, ResultList] = field(default_factory=dict)

    def table_ids(self) -> list[int]:
        """Fused table ids, best-first."""
        return self.output.table_ids()

    def __len__(self) -> int:
        return len(self.output)

    def __iter__(self):
        return iter(self.output)
