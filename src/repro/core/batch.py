"""Cross-query batched seeker execution for the serving tier.

The vectorized kernels of :mod:`repro.core.seekers` batch *inside* one
query (one ``may_contain_batch`` pass, one count-matrix validation); this
module batches *across* concurrently-arriving queries of the same
modality so a serving batch window runs a fixed number of index passes
regardless of how many requests it coalesces:

* **SC / KW** -- all queries' tokens union into ONE index scan; each
  query's per-(table[, column]) distinct-overlap ranking is then a
  bincount over the shared scan, replicating its solo SQL byte for byte.
* **MC** -- queries of the same tuple width share ONE phase-1 join over
  the union of their per-column token lists (a superset of every query's
  own candidate rows -- safe because phase 3 is exact), phase 2 runs each
  query's blocked bitwise mask (:func:`may_contain_batch`) over the
  shared candidates -- pruning XASH misses and the union's cross-query
  false candidates alike -- and phase 3 gathers each distinct surviving
  row ONCE and builds a single count matrix over the combined query
  vocabulary, from which every query's containment check is a
  column-gathered slice.

Every kernel emits the same :class:`~repro.core.results.SeekerPartials`
the serial path does, so serial, batched, and sharded execution share one
result contract: ``execute_batch`` is the degenerate one-shard merge of
``execute_batch_partials``, and the batching-parity tests pin
byte-identical results on both storage backends. Rewrites
(combiner-injected predicates) stay on the per-query path: batches are
built from independent requests, which have none.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from ..engine.storage.column_store import DictCodes
from ..index.xash import may_contain_batch
from .results import (
    RANKED,
    ResultList,
    SeekerPartials,
    count_partials,
    merge_partials,
    resolved_partials,
)
from .seekers import (
    OVERFETCH,
    KeywordSeeker,
    MultiColumnSeeker,
    Seeker,
    SeekerContext,
    SingleColumnSeeker,
    _token_count_matrix,
)


def seeker_partials(seeker: Seeker, context: SeekerContext) -> SeekerPartials:
    """``seeker.partials(context)``, degrading to a non-mergeable wrap of
    ``execute`` for duck-typed seekers that never implemented partials."""
    method = getattr(type(seeker), "partials", None)
    if method is None or method is Seeker.partials:
        return resolved_partials(seeker.execute(context))
    return seeker.partials(context)


def execute_batch(
    seekers: Sequence[Seeker], context: SeekerContext
) -> list[ResultList]:
    """Execute *seekers* against *context*, coalescing same-modality
    queries into shared index passes. Returns one ``ResultList`` per
    seeker, positionally aligned, each identical to what
    ``seeker.execute(context)`` returns."""
    partials = execute_batch_partials(seekers, context)
    return [
        merge_partials([part], seeker.k)
        for seeker, part in zip(seekers, partials)
    ]


def execute_batch_partials(
    seekers: Sequence[Seeker], context: SeekerContext
) -> list[SeekerPartials]:
    """The partials form of :func:`execute_batch`: one mergeable
    :class:`SeekerPartials` per seeker, positionally aligned, each
    identical to ``seeker.partials(context)`` -- this is what a shard
    worker ships to the scatter-gather coordinator.

    Seekers outside the batchable modalities (or MC under a
    non-vectorized context) fall back to their own ``partials``.
    """
    context.ensure_fresh()
    results: list[Optional[SeekerPartials]] = [None] * len(seekers)
    value_groups: dict[str, list[int]] = {}
    mc_group: list[int] = []
    for i, seeker in enumerate(seekers):
        if isinstance(seeker, MultiColumnSeeker) and context.vectorized:
            mc_group.append(i)
        elif isinstance(seeker, (SingleColumnSeeker, KeywordSeeker)):
            value_groups.setdefault(seeker.kind, []).append(i)
        else:
            results[i] = seeker_partials(seeker, context)
    for kind, indices in value_groups.items():
        if len(indices) == 1:  # nothing to coalesce; solo SQL is cheaper
            results[indices[0]] = seeker_partials(seekers[indices[0]], context)
            continue
        batch = _execute_value_batch(
            [seekers[i] for i in indices], context, per_column=kind == "SC"
        )
        for i, result in zip(indices, batch):
            results[i] = result
    if len(mc_group) == 1:
        results[mc_group[0]] = seeker_partials(seekers[mc_group[0]], context)
    elif mc_group:
        batch = _execute_mc_batch([seekers[i] for i in mc_group], context)
        for i, result in zip(mc_group, batch):
            results[i] = result
    return results  # type: ignore[return-value]


# -- SC / KW: one scan, per-query bincount rankings ---------------------------------


def _vocab_codes(values: np.ndarray, vocabulary: dict[str, int]) -> np.ndarray:
    """Translate the scan's ``CellValue`` column into batch-vocabulary
    codes. Dictionary-coded columns (the column backend's text columns,
    surfaced by ``decode_text=False``) translate per DISTINCT store code
    -- a handful of dict probes plus one integer gather -- instead of one
    Python probe per scanned row; object arrays (the row backend) keep
    the per-row probe."""
    if isinstance(values, DictCodes):
        store_codes = np.asarray(values)
        present = np.unique(store_codes)
        dictionary = values.dictionary
        lut = np.fromiter(
            (vocabulary[dictionary[code]] for code in present),
            dtype=np.int64,
            count=len(present),
        )
        return lut[np.searchsorted(present, store_codes)]
    return np.fromiter(
        (vocabulary[value] for value in values), dtype=np.int64, count=len(values)
    )


def _execute_value_batch(
    seekers: Sequence[Seeker], context: SeekerContext, per_column: bool
) -> list[SeekerPartials]:
    """Shared kernel for SC (``per_column=True``) and KW batches.

    One ``CellValue IN (union of all queries' tokens)`` scan replaces N
    grouped SQL queries; the scan's distinct ``(table[, column], value)``
    triples are grouped once, and each query ranks groups by how many of
    *its* tokens each holds -- the same ``COUNT(DISTINCT CellValue)`` /
    ``ORDER BY overlap DESC, TableId[, ColumnId]`` / ``LIMIT`` pipeline
    its solo SQL runs, emitted as ranked partials (group rows best-first,
    cut at the solo fetch) for the shared merge tail.
    """
    vocabulary: dict[str, int] = {}
    for seeker in seekers:
        for token in seeker.tokens:  # type: ignore[attr-defined]
            vocabulary.setdefault(token, len(vocabulary))
    columns = "TableId, ColumnId, CellValue" if per_column else "TableId, CellValue"
    sql = f"SELECT {columns} FROM {context.index_table} WHERE CellValue IN (:q)"
    result = context.db.execute_columnar(
        sql, {"q": list(vocabulary)}, decode_text=False
    )
    table_ids = result.arrays[0][0]
    if per_column:
        column_ids = result.arrays[1][0]
        values = result.arrays[2][0]
    else:
        column_ids = np.zeros(len(table_ids), dtype=np.int64)
        values = result.arrays[1][0]
    def empty_partials(seeker: Seeker) -> SeekerPartials:
        fetch = seeker.k * OVERFETCH if per_column else seeker.k
        return SeekerPartials(RANKED, fetch=fetch)

    n = len(table_ids)
    if n == 0:
        return [empty_partials(seeker) for seeker in seekers]
    codes = _vocab_codes(values, vocabulary)

    # Distinct (table[, column], value) triples, sorted by group -- the
    # scan returns one row per physical cell, but overlap counts DISTINCT
    # values per group. The three sort keys pack into one int64 (their
    # ranges are small: ids and vocabulary codes), turning a three-key
    # lexsort plus three-way compares into one argsort and one compare.
    code_span = np.int64(len(vocabulary))
    column_span = np.int64(column_ids.max() + 1)
    packed = (table_ids * column_span + column_ids) * code_span + codes
    order = np.argsort(packed)
    packed = packed[order]
    first = np.ones(n, dtype=bool)
    first[1:] = packed[1:] != packed[:-1]
    table_ids = table_ids[order][first]
    column_ids = column_ids[order][first]
    codes = codes[order][first]
    group_key = packed[first] // code_span

    new_group = np.ones(len(table_ids), dtype=bool)
    new_group[1:] = group_key[1:] != group_key[:-1]
    group_index = np.cumsum(new_group) - 1
    group_starts = np.nonzero(new_group)[0]
    group_tables = table_ids[group_starts]
    group_columns = column_ids[group_starts]
    n_groups = len(group_starts)

    results: list[SeekerPartials] = []
    member = np.zeros(len(vocabulary), dtype=bool)
    for seeker in seekers:
        my_codes = [vocabulary[token] for token in seeker.tokens]  # type: ignore[attr-defined]
        member[my_codes] = True
        overlaps = np.bincount(
            group_index[member[codes]], minlength=n_groups
        )
        member[my_codes] = False
        hit = overlaps > 0
        if not hit.any():
            results.append(empty_partials(seeker))
            continue
        tables, cols, counts = group_tables[hit], group_columns[hit], overlaps[hit]
        ranked = np.lexsort((cols, tables, -counts))
        fetch = seeker.k * OVERFETCH if per_column else seeker.k
        cut = ranked[:fetch]
        results.append(
            SeekerPartials(
                RANKED,
                tables[cut].astype(np.int64),
                counts[cut].astype(np.float64),
                group_keys=cols[cut].astype(np.int64) if per_column else None,
                fetch=fetch,
            )
        )
    return results


# -- MC: shared phase 1 per width, per-query phase 2, combined phase 3 --------------

# Queries unioned into one phase-1 join per chunk; past this size the
# union's cross-query candidate blowup outweighs the saved SQL passes.
_MC_FETCH_CHUNK = 8


def _fetch_mc_group(
    group: Sequence[MultiColumnSeeker], context: SeekerContext
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared phase 1 for a same-width group: ONE join over the union of
    the group's per-column token lists. The result is a superset of every
    member's own candidate set (each per-column ``IN`` list is a
    superset), so downstream exact validation yields identical answers;
    deduplicated ``(TableId, RowId)`` like the per-query fetch."""
    proto = group[0]
    if len(group) == 1:
        return proto.fetch_candidate_arrays(context)
    params: dict[str, Any] = {}
    for position in range(proto.width):
        union: dict[str, None] = {}
        for seeker in group:
            for token in seeker.column_tokens(position):
                union.setdefault(token)
        params[f"q{position}"] = list(union)
    sql = proto.sql().format(index=context.index_table)
    result = context.db.execute_columnar(sql, params)
    table_ids = result.arrays[0][0]
    row_ids = result.arrays[1][0]
    super_keys = result.arrays[2][0]
    if len(table_ids) == 0:
        return table_ids, row_ids, super_keys
    order = np.lexsort((row_ids, table_ids))
    table_ids, row_ids, super_keys = (
        table_ids[order],
        row_ids[order],
        super_keys[order],
    )
    first = np.ones(len(table_ids), dtype=bool)
    first[1:] = (table_ids[1:] != table_ids[:-1]) | (row_ids[1:] != row_ids[:-1])
    return table_ids[first], row_ids[first], super_keys[first]


def _execute_mc_batch(
    seekers: Sequence[MultiColumnSeeker], context: SeekerContext
) -> list[SeekerPartials]:
    """Batched MC pipeline: one candidate join per tuple width (phase 1),
    one stacked super-key containment pass per width group (phase 2), and
    one combined count-matrix validation for the whole batch (phase 3)."""
    width_groups: dict[int, list[int]] = {}
    for q, seeker in enumerate(seekers):
        width_groups.setdefault(seeker.width, []).append(q)

    # Phase 1 per width group: one shared union join. Phase 2 per query
    # over the shared candidates: the per-query super-key mask prunes
    # both XASH misses AND the union's cross-query false candidates, so
    # each query's phase-3 slice stays solo-sized.
    # The union's candidate superset grows superlinearly with the number
    # of unioned queries, so very large groups share the join in chunks.
    chunks: list[list[int]] = []
    for members in width_groups.values():
        for start in range(0, len(members), _MC_FETCH_CHUNK):
            chunks.append(members[start : start + _MC_FETCH_CHUNK])

    survivor_tables: list[np.ndarray] = []
    survivor_rows: list[np.ndarray] = []
    survivors_of: dict[int, slice] = {}  # seeker index -> concatenation slice
    offset = 0
    for chunk in chunks:
        group = [seekers[q] for q in chunk]
        tables, rows, keys = _fetch_mc_group(group, context)
        for q, seeker in zip(chunk, group):
            if len(tables):
                mask = may_contain_batch(keys, seeker._tuple_hash_array(context))
                mine_tables, mine_rows = tables[mask], rows[mask]
            else:
                mine_tables, mine_rows = tables, rows
            survivor_tables.append(mine_tables)
            survivor_rows.append(mine_rows)
            survivors_of[q] = slice(offset, offset + len(mine_tables))
            offset += len(mine_tables)

    all_tables = np.concatenate(survivor_tables)
    all_rows = np.concatenate(survivor_rows)

    if len(all_tables) == 0:
        return [count_partials([], []) for _ in seekers]

    # Combined query vocabulary: per-seeker local code -> global code
    # gather arrays. Iterating a vocabulary dict yields tokens in local
    # code order, so position i of the map IS local code i.
    global_vocab: dict[str, int] = {}
    code_maps: list[np.ndarray] = []
    requirements = [seeker._query_requirements() for seeker in seekers]
    for req in requirements:
        code_maps.append(
            np.fromiter(
                (
                    global_vocab.setdefault(token, len(global_vocab))
                    for token in req.vocabulary
                ),
                dtype=np.int64,
                count=len(req.vocabulary),
            )
        )

    # Phase 3: gather each distinct (table, row) ONCE across the batch.
    order = np.lexsort((all_rows, all_tables))
    sorted_tables = all_tables[order]
    sorted_rows = all_rows[order]
    pair_first = np.ones(len(sorted_tables), dtype=bool)
    pair_first[1:] = (sorted_tables[1:] != sorted_tables[:-1]) | (
        sorted_rows[1:] != sorted_rows[:-1]
    )
    pair_tables = sorted_tables[pair_first]
    pair_rows = sorted_rows[pair_first]
    # survivor position -> distinct pair index
    pair_of_survivor = np.empty(len(all_tables), dtype=np.int64)
    pair_of_survivor[order] = np.cumsum(pair_first) - 1

    boundaries = np.nonzero(pair_tables[1:] != pair_tables[:-1])[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(pair_tables)]))
    gathered: list[tuple] = []
    # Distinct pair -> row index into the count matrix; -1 = dropped by
    # the lake's bounds check (stale index rows), matching the serial
    # path's silent skip.
    matrix_row = np.full(len(pair_tables), -1, dtype=np.int64)
    for start, end in zip(starts, ends):
        table_id = int(pair_tables[start])
        requested = pair_rows[start:end]
        kept, rows = context.lake.gather_rows(table_id, requested)
        if not rows:
            continue
        positions = start + np.searchsorted(requested, np.asarray(kept))
        matrix_row[positions] = np.arange(len(gathered), len(gathered) + len(rows))
        gathered.extend(rows)

    if not gathered:
        return [count_partials([], []) for _ in seekers]
    # Fresh memo: codes here live in the batch's global vocabulary, which
    # is incompatible with each seeker's private ``_cell_memo``.
    batch_memo: dict[Any, int] = {}
    counts = _token_count_matrix(gathered, global_vocab, batch_memo)

    results: list[SeekerPartials] = []
    for q, (seeker, req, code_map) in enumerate(
        zip(seekers, requirements, code_maps)
    ):
        mine = survivors_of[q]
        rows_idx = matrix_row[pair_of_survivor[mine]]
        present = rows_idx >= 0
        rows_idx = rows_idx[present]
        if len(rows_idx) == 0:
            results.append(count_partials([], []))
            continue
        local_counts = counts[rows_idx][:, code_map]
        valid = np.zeros(len(rows_idx), dtype=bool)
        if req.incidence is not None:
            hits = (local_counts > 0).astype(np.int32) @ req.incidence
            valid |= (hits == req.widths).any(axis=1)
        for codes, required in req.multisets:
            valid |= (local_counts[:, codes] >= required).all(axis=1)
        validated_tables = all_tables[mine][present][valid]
        if len(validated_tables) == 0:
            results.append(count_partials([], []))
            continue
        unique_tables, tallies = np.unique(validated_tables, return_counts=True)
        results.append(count_partials(unique_tables, tallies))
    return results
