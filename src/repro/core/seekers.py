"""Seeker operators (paper §IV-A, §VI): SC, KW, MC, and Correlation.

Each seeker compiles to a SQL statement over ``AllTables`` -- the same
statements as the paper's Listings 1-3, extended with:

* a ``/*REWRITE*/`` placeholder where the optimizer injects
  combiner-dependent predicates (``TableId [NOT] IN :ir``, §VII-B), and
* deterministic tie-breaking sort keys (TableId, ColumnId), so both
  storage backends return identical rankings.

SC and C group by (TableId, ColumnId); the database returns ranked
*groups*, which the seeker deduplicates to ranked *tables*. An over-fetch
factor bounds the group fan-out per table (exact for tables with up to
``OVERFETCH`` qualifying columns, far above any realistic width).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from ..engine.database import Database
from ..errors import SeekerError, StaleContextError
from ..index.quadrant import split_keys_by_target
from ..index.xash import (
    may_contain,
    may_contain_batch,
    tuple_hash,
    tuple_hashes_batch,
)
from ..lake.datalake import DataLake
from ..lake.table import Cell, Table, normalize_cell
from .results import (
    ResultList,
    SeekerPartials,
    TableHit,
    count_partials,
    dedupe_ranked_groups,
    merge_partials,
    rank_table_counts,
    ranked_partials,
)

__all__ = [
    "OVERFETCH",
    "REWRITE_MARKER",
    "Rewrite",
    "SeekerContext",
    "Seeker",
    "Seekers",
    "SeekerPartials",
    "SingleColumnSeeker",
    "KeywordSeeker",
    "MultiColumnSeeker",
    "CorrelationSeeker",
    "SEEKER_RULE_RANK",
    "count_partials",
    "dedupe_ranked_groups",
    "merge_partials",
    "rank_table_counts",
    "ranked_partials",
]

OVERFETCH = 32
REWRITE_MARKER = "/*REWRITE*/"


@dataclass(frozen=True)
class Rewrite:
    """A combiner-dependent predicate injected by the optimizer.

    ``mode`` is ``"intersect"`` (``TableId IN``) or ``"difference"``
    (``TableId NOT IN``); ``table_ids`` come from already-executed sibling
    seekers' intermediate results.
    """

    mode: str
    table_ids: tuple[int, ...]

    def predicate_sql(self, qualifier: str = "") -> str:
        column = f"{qualifier}TableId"
        if self.mode == "intersect":
            return f" AND {column} IN (:__rewrite_ids)"
        if self.mode == "difference":
            return f" AND {column} NOT IN (:__rewrite_ids)"
        raise SeekerError(f"unknown rewrite mode: {self.mode}")


@dataclass
class SeekerContext:
    """Everything a seeker needs at execution time.

    ``semantic`` is the optional vector index of the semantic extension
    (:mod:`repro.core.semantic`); ``None`` unless the deployment called
    ``Blend.enable_semantic()``.

    ``vectorized`` selects the batched MC phase-2/3 pipeline (the
    default); ``False`` runs the seed scalar phases, kept as the
    reference oracle exactly like ``IndexConfig(vectorized=False)`` on
    the offline side.

    ``generation`` is the lake generation this context was created at
    (``Blend.context()`` stamps it). Seekers refuse to run against a
    context whose lake has since mutated -- a stale context could
    silently rank dead table ids or miss fresh ones -- raising
    :class:`~repro.errors.StaleContextError` instead. ``None`` (the
    default for hand-built contexts over static lakes) disables the
    check.
    """

    db: Database
    lake: DataLake
    index_table: str = "AllTables"
    hash_size: int = 63
    xash_chars: int = 2
    semantic: Optional[Any] = None
    vectorized: bool = True
    generation: Optional[int] = None

    def ensure_fresh(self) -> None:
        """Raise :class:`StaleContextError` if the lake mutated since
        this context was created."""
        if self.generation is None:
            return
        current = self.lake.generation
        if current != self.generation:
            raise StaleContextError(
                f"seeker context was created at lake generation "
                f"{self.generation} but the lake is now at generation "
                f"{current} (tables were added, removed, or replaced); "
                "re-create the context to serve the current corpus"
            )


def _normalize_values(values: Iterable[Cell]) -> list[str]:
    tokens: list[str] = []
    seen: set[str] = set()
    for value in values:
        token = normalize_cell(value)
        if token is not None and token not in seen:
            seen.add(token)
            tokens.append(token)
    return tokens


class Seeker:
    """Base class: a parameterised SQL template plus result shaping.

    Subclasses implement :meth:`partials` -- everything up to but not
    including the final ranking cut. :meth:`execute` is the degenerate
    one-shard merge of that partial; a scatter-gather coordinator calls
    :meth:`partials` on every shard and merges the K results with the
    same :func:`~repro.core.results.merge_partials`, which is what makes
    sharded execution byte-identical to serial by construction.
    """

    kind: str = "?"

    def __init__(self, k: int = 10) -> None:
        if k < 0:
            raise SeekerError("k must be non-negative")
        self.k = k

    # -- interface ---------------------------------------------------------------

    def sql(self, rewrite: Optional[Rewrite] = None) -> str:
        """The SQL statement with the rewrite placeholder resolved."""
        raise NotImplementedError

    def params(self, rewrite: Optional[Rewrite] = None) -> dict[str, Any]:
        raise NotImplementedError

    def partials(
        self, context: SeekerContext, rewrite: Optional[Rewrite] = None
    ) -> SeekerPartials:
        """The mergeable partial result of this query over *context*'s
        (shard of the) lake -- see :class:`~repro.core.results.SeekerPartials`."""
        raise NotImplementedError

    def execute(self, context: SeekerContext, rewrite: Optional[Rewrite] = None) -> ResultList:
        return merge_partials([self.partials(context, rewrite)], self.k)

    # -- cost-model features (paper §VII-B) ------------------------------------------

    def query_cardinality(self) -> int:
        """|Q|: the number of query tokens."""
        raise NotImplementedError

    def query_columns(self) -> int:
        """Number of columns in Q."""
        raise NotImplementedError

    def query_tokens(self) -> list[str]:
        """All query tokens (for the average-frequency feature)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(|Q|={self.query_cardinality()}, k={self.k})"


class SingleColumnSeeker(Seeker):
    """SC: top-k tables by best single-column value overlap (Listing 1)."""

    kind = "SC"

    def __init__(self, values: Iterable[Cell], k: int = 10) -> None:
        super().__init__(k)
        self.tokens = _normalize_values(values)
        if not self.tokens:
            raise SeekerError("SC seeker requires at least one non-null value")

    def sql(self, rewrite: Optional[Rewrite] = None) -> str:
        predicate = rewrite.predicate_sql() if rewrite else ""
        template = (
            "SELECT TableId, COUNT(DISTINCT CellValue) AS overlap FROM {index} "
            "WHERE CellValue IN (:q)" + REWRITE_MARKER + " "
            "GROUP BY TableId, ColumnId "
            "ORDER BY overlap DESC, TableId, ColumnId "
            "LIMIT :fetch"
        )
        return template.replace(REWRITE_MARKER, predicate)

    def params(self, rewrite: Optional[Rewrite] = None) -> dict[str, Any]:
        params: dict[str, Any] = {"q": self.tokens, "fetch": self.k * OVERFETCH}
        if rewrite:
            params["__rewrite_ids"] = list(rewrite.table_ids)
        return params

    def partials(
        self, context: SeekerContext, rewrite: Optional[Rewrite] = None
    ) -> SeekerPartials:
        context.ensure_fresh()
        sql = self.sql(rewrite).format(index=context.index_table)
        result = context.db.execute(sql, self.params(rewrite))
        return ranked_partials(result.rows, self.k * OVERFETCH)

    def query_cardinality(self) -> int:
        return len(self.tokens)

    def query_columns(self) -> int:
        return 1

    def query_tokens(self) -> list[str]:
        return list(self.tokens)


class KeywordSeeker(Seeker):
    """KW: top-k tables by whole-table keyword overlap (§VI).

    The SC variant without ColumnId in the GROUP BY -- overlap is counted
    across the entire table rather than per column.
    """

    kind = "KW"

    def __init__(self, keywords: Iterable[Cell], k: int = 10) -> None:
        super().__init__(k)
        self.tokens = _normalize_values(keywords)
        if not self.tokens:
            raise SeekerError("KW seeker requires at least one keyword")

    def sql(self, rewrite: Optional[Rewrite] = None) -> str:
        predicate = rewrite.predicate_sql() if rewrite else ""
        template = (
            "SELECT TableId, COUNT(DISTINCT CellValue) AS overlap FROM {index} "
            "WHERE CellValue IN (:q)" + REWRITE_MARKER + " "
            "GROUP BY TableId "
            "ORDER BY overlap DESC, TableId "
            "LIMIT :k"
        )
        return template.replace(REWRITE_MARKER, predicate)

    def params(self, rewrite: Optional[Rewrite] = None) -> dict[str, Any]:
        params: dict[str, Any] = {"q": self.tokens, "k": self.k}
        if rewrite:
            params["__rewrite_ids"] = list(rewrite.table_ids)
        return params

    def partials(
        self, context: SeekerContext, rewrite: Optional[Rewrite] = None
    ) -> SeekerPartials:
        context.ensure_fresh()
        sql = self.sql(rewrite).format(index=context.index_table)
        result = context.db.execute(sql, self.params(rewrite))
        return ranked_partials(result.rows, self.k)

    def query_cardinality(self) -> int:
        return len(self.tokens)

    def query_columns(self) -> int:
        return 1

    def query_tokens(self) -> list[str]:
        return list(self.tokens)


class MultiColumnSeeker(Seeker):
    """MC: top-k tables containing query tuples row-aligned (Listing 2).

    Three phases, as in MATE:

    1. **SQL candidate fetch** -- an inner-join chain over ``AllTables``
       finds rows containing a value from every query column.
    2. **Super-key filter** -- candidate rows whose XASH super key cannot
       bit-contain any query tuple's hash are pruned without touching the
       data (no false negatives).
    3. **Exact validation** -- surviving rows are checked against the
       actual lake tuples ("application-level" in the paper).

    Tables are ranked by their number of validated joinable rows.
    """

    kind = "MC"

    def __init__(self, rows: Iterable[Sequence[Cell]] | Table, k: int = 10) -> None:
        super().__init__(k)
        raw_rows = rows.rows if isinstance(rows, Table) else list(rows)
        self.tuples: list[tuple[str, ...]] = []
        for row in raw_rows:
            tokens = tuple(normalize_cell(v) for v in row)
            if any(token is None for token in tokens):
                continue
            self.tuples.append(tokens)  # type: ignore[arg-type]
        if not self.tuples:
            raise SeekerError("MC seeker requires at least one fully non-null tuple")
        widths = {len(t) for t in self.tuples}
        if len(widths) != 1:
            raise SeekerError("MC seeker tuples must all have the same width")
        self.width = widths.pop()
        if self.width < 2:
            raise SeekerError("MC seeker requires a composite key (>= 2 columns)")
        # Lazy per-(hash_size, xash_chars) tuple-hash arrays and the
        # factorized validation requirements (built on first vectorized
        # execution, reused across executions and rewrites). The cell
        # memo persists across executions too: the query vocabulary is
        # fixed per seeker, so a lake cell's code never changes.
        self._hash_cache: dict[tuple[int, int], np.ndarray] = {}
        self._requirements: Optional[_QueryRequirements] = None
        self._cell_memo: dict[Any, int] = {}

    def column_tokens(self, position: int) -> list[str]:
        """Distinct tokens of one query column."""
        seen: set[str] = set()
        out: list[str] = []
        for row in self.tuples:
            token = row[position]
            if token not in seen:
                seen.add(token)
                out.append(token)
        return out

    def sql(self, rewrite: Optional[Rewrite] = None) -> str:
        # The rewrite predicate goes INSIDE every derived table, where it
        # is sargable against the TableId index (Example 2's
        # ``WHERE Q1_index_hits.TableId IN (IR_SC)``, pushed down --
        # equivalent on all join sides because the join equates TableId).
        predicate = rewrite.predicate_sql() if rewrite else ""
        parts = [
            "SELECT Q0.TableId, Q0.RowId, Q0.SuperKey FROM ",
            "(SELECT * FROM {index} WHERE CellValue IN (:q0)" + predicate + ") AS Q0",
        ]
        for i in range(1, self.width):
            parts.append(
                f" INNER JOIN (SELECT * FROM {{index}} WHERE CellValue IN (:q{i})"
                f"{predicate}) AS Q{i}"
                f" ON Q0.TableId = Q{i}.TableId AND Q0.RowId = Q{i}.RowId"
            )
        return "".join(parts)

    def params(self, rewrite: Optional[Rewrite] = None) -> dict[str, Any]:
        params: dict[str, Any] = {
            f"q{i}": self.column_tokens(i) for i in range(self.width)
        }
        if rewrite:
            params["__rewrite_ids"] = list(rewrite.table_ids)
        return params

    def partials(
        self, context: SeekerContext, rewrite: Optional[Rewrite] = None
    ) -> SeekerPartials:
        """Exact per-table validated-row counts -- the counts-kind
        partial; per-shard counts sum in the merge before the top-k.

        ``context.vectorized`` selects the batched phase-2/3 pipeline
        (columnar candidate fetch, one bitwise pass, per-table factorized
        validation); ``False`` runs the seed scalar phases, kept as the
        reference oracle."""
        context.ensure_fresh()
        if context.vectorized:
            table_ids, row_ids, super_keys = self.fetch_candidate_arrays(
                context, rewrite
            )
            table_ids, row_ids = self.superkey_filter_batch(
                table_ids, row_ids, super_keys, context
            )
            table_ids, _ = self.validate_batch(table_ids, row_ids, context)
            if len(table_ids) == 0:
                return count_partials([], [])
            unique_tables, counts = np.unique(table_ids, return_counts=True)
            return count_partials(unique_tables, counts)
        candidates = self.fetch_candidates(context, rewrite)
        filtered = self.superkey_filter(candidates, context)
        validated = self.validate(filtered, context)
        counts_by_table: dict[int, int] = {}
        for table_id, _ in validated:
            counts_by_table[table_id] = counts_by_table.get(table_id, 0) + 1
        return count_partials(
            list(counts_by_table.keys()), list(counts_by_table.values())
        )

    # -- the three MC phases, exposed for tests and Table V ------------------------

    def fetch_candidates(
        self, context: SeekerContext, rewrite: Optional[Rewrite] = None
    ) -> list[tuple[int, int, int]]:
        """Phase 1: (TableId, RowId, SuperKey) rows from the SQL join."""
        sql = self.sql(rewrite).format(index=context.index_table)
        result = context.db.execute(sql, self.params(rewrite))
        seen: set[tuple[int, int]] = set()
        candidates: list[tuple[int, int, int]] = []
        for table_id, row_id, super_key_value in result.rows:
            key = (table_id, row_id)
            if key not in seen:
                seen.add(key)
                candidates.append((table_id, row_id, super_key_value))
        return candidates

    def superkey_filter(
        self, candidates: list[tuple[int, int, int]], context: SeekerContext
    ) -> list[tuple[int, int]]:
        """Phase 2: prune rows whose super key cannot contain any tuple."""
        hashes = [
            tuple_hash(t, context.hash_size, context.xash_chars) for t in self.tuples
        ]
        survivors: list[tuple[int, int]] = []
        for table_id, row_id, super_key_value in candidates:
            if any(may_contain(super_key_value, h) for h in hashes):
                survivors.append((table_id, row_id))
        return survivors

    def validate(
        self, candidates: list[tuple[int, int]], context: SeekerContext
    ) -> list[tuple[int, int]]:
        """Phase 3: exact containment check against the lake tuples."""
        query_tuples = set(self.tuples)
        validated: list[tuple[int, int]] = []
        for table_id, row_id in candidates:
            table = context.lake.by_id(table_id)
            if not 0 <= row_id < table.num_rows:
                continue  # stale index rows; negatives must not wrap
            row_tokens = [normalize_cell(v) for v in table.rows[row_id]]
            if _row_contains_any_tuple(row_tokens, query_tuples, self.width):
                validated.append((table_id, row_id))
        return validated

    # -- batched phases (the vectorized pipeline; scalar methods above are
    # -- the reference oracle) -----------------------------------------------------

    def fetch_candidate_arrays(
        self, context: SeekerContext, rewrite: Optional[Rewrite] = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Phase 1, array form: deduplicated ``(TableId, RowId, SuperKey)``
        columns straight from the executor -- no per-row Python tuples."""
        sql = self.sql(rewrite).format(index=context.index_table)
        result = context.db.execute_columnar(sql, self.params(rewrite))
        table_ids = result.arrays[0][0]
        row_ids = result.arrays[1][0]
        super_keys = result.arrays[2][0]
        if len(table_ids) == 0:
            return table_ids, row_ids, super_keys
        order = np.lexsort((row_ids, table_ids))
        table_ids = table_ids[order]
        row_ids = row_ids[order]
        super_keys = super_keys[order]
        first = np.ones(len(table_ids), dtype=bool)
        first[1:] = (table_ids[1:] != table_ids[:-1]) | (row_ids[1:] != row_ids[:-1])
        return table_ids[first], row_ids[first], super_keys[first]

    def superkey_filter_batch(
        self,
        table_ids: np.ndarray,
        row_ids: np.ndarray,
        super_keys: np.ndarray,
        context: SeekerContext,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Phase 2, array form: one bitwise-AND pass per distinct query
        hash over the full candidate array."""
        mask = may_contain_batch(super_keys, self._tuple_hash_array(context))
        return table_ids[mask], row_ids[mask]

    def validate_batch(
        self, table_ids: np.ndarray, row_ids: np.ndarray, context: SeekerContext
    ) -> tuple[np.ndarray, np.ndarray]:
        """Phase 3, array form: survivors grouped per table, each table's
        candidate rows gathered in one lake call, then ONE global
        containment check over factorized token codes.

        A row contains a tuple row-aligned iff, for every distinct token
        of the tuple, the row holds at least as many cells with that token
        as the tuple does (Hall's condition -- positions of distinct
        tokens are disjoint, so the bipartite matching of the scalar
        oracle decomposes into per-token counts). For tuples without
        repeated tokens -- the overwhelmingly common case -- that is a
        presence check, evaluated for all (row, tuple) pairs at once as
        an integer matmul against the tuple-incidence matrix.
        """
        if len(table_ids) == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        requirements = self._query_requirements()
        order = np.argsort(table_ids, kind="stable")
        sorted_tables = table_ids[order]
        sorted_rows = row_ids[order]
        boundaries = np.nonzero(sorted_tables[1:] != sorted_tables[:-1])[0] + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_tables)]))
        kept_tables: list[np.ndarray] = []
        kept_rows: list[np.ndarray] = []
        gathered: list[tuple] = []
        for start, end in zip(starts, ends):
            table_id = int(sorted_tables[start])
            kept, rows = context.lake.gather_rows(table_id, sorted_rows[start:end])
            if not rows:
                continue
            kept_tables.append(np.full(len(kept), table_id, dtype=np.int64))
            kept_rows.append(np.asarray(kept, dtype=np.int64))
            gathered.extend(rows)
        if not gathered:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        counts = _token_count_matrix(
            gathered, requirements.vocabulary, self._cell_memo
        )
        valid = np.zeros(len(gathered), dtype=bool)
        if requirements.incidence is not None:
            hits = (counts > 0).astype(np.int32) @ requirements.incidence
            valid |= (hits == requirements.widths).any(axis=1)
        for codes, required in requirements.multisets:
            valid |= (counts[:, codes] >= required).all(axis=1)
        all_tables = np.concatenate(kept_tables)
        all_rows = np.concatenate(kept_rows)
        return all_tables[valid], all_rows[valid]

    def _tuple_hash_array(self, context: SeekerContext) -> np.ndarray:
        """Distinct query-tuple hashes, computed once per hash config."""
        key = (context.hash_size, context.xash_chars)
        cached = self._hash_cache.get(key)
        if cached is None:
            distinct = list(dict.fromkeys(self.tuples))
            cached = np.unique(tuple_hashes_batch(distinct, *key))
            self._hash_cache[key] = cached
        return cached

    def _query_requirements(self) -> "_QueryRequirements":
        """The factorized containment requirements of this query, built
        once: token -> dense code vocabulary, a (vocab x tuples)
        incidence matrix for repeat-free tuples, and explicit
        ``(codes, counts)`` multisets for tuples with repeated tokens."""
        if self._requirements is None:
            vocabulary: dict[str, int] = {}
            simple: list[list[int]] = []
            multisets: list[tuple[np.ndarray, np.ndarray]] = []
            for query_tuple in dict.fromkeys(self.tuples):
                needed: dict[int, int] = {}
                for token in query_tuple:
                    code = vocabulary.setdefault(token, len(vocabulary))
                    needed[code] = needed.get(code, 0) + 1
                if all(count == 1 for count in needed.values()):
                    simple.append(list(needed))
                else:
                    multisets.append(
                        (
                            np.fromiter(needed.keys(), dtype=np.int64, count=len(needed)),
                            np.fromiter(needed.values(), dtype=np.int64, count=len(needed)),
                        )
                    )
            incidence: Optional[np.ndarray] = None
            widths = np.empty(0, dtype=np.int32)
            if simple:
                incidence = np.zeros((len(vocabulary), len(simple)), dtype=np.int32)
                for column, codes in enumerate(simple):
                    incidence[codes, column] = 1
                widths = np.fromiter(
                    (len(codes) for codes in simple), dtype=np.int32, count=len(simple)
                )
            self._requirements = _QueryRequirements(
                vocabulary, incidence, widths, multisets
            )
        return self._requirements

    def query_cardinality(self) -> int:
        return sum(len(self.column_tokens(i)) for i in range(self.width))

    def query_columns(self) -> int:
        return self.width

    def query_tokens(self) -> list[str]:
        tokens: list[str] = []
        for i in range(self.width):
            tokens.extend(self.column_tokens(i))
        return tokens


@dataclass(frozen=True)
class _QueryRequirements:
    """Factorized containment requirements of one MC query.

    ``incidence``/``widths`` cover tuples without repeated tokens (a row
    contains such a tuple iff its token-presence vector hits the tuple's
    full width); ``multisets`` lists the rare repeated-token tuples as
    explicit per-code minimum counts."""

    vocabulary: dict[str, int]
    incidence: Optional[np.ndarray]
    widths: np.ndarray
    multisets: list[tuple[np.ndarray, np.ndarray]]


_MISS = object()


def _token_count_matrix(
    rows: list[tuple], vocabulary: dict[str, int], memo: dict[Any, int]
) -> np.ndarray:
    """Per-row occurrence counts of each query-vocabulary token.

    One dict probe per cell: *memo* maps raw cell values to their vocab
    code (``-1`` = not a query token), so repeated values -- the common
    case in skewed lakes -- skip normalisation entirely. Booleans bypass
    the memo: ``True == 1`` in Python, so they must never share memo
    slots with the numbers they compare equal to (their *tokens* differ:
    ``"true"`` vs ``"1"``).
    """
    counts = np.zeros((len(rows), len(vocabulary)), dtype=np.int32)
    for i, row in enumerate(rows):
        for value in row:
            if value is None:
                continue
            if isinstance(value, bool):
                code = vocabulary.get("true" if value else "false", -1)
            else:
                code = memo.get(value, _MISS)
                if code is _MISS:
                    token = normalize_cell(value)
                    code = -1 if token is None else vocabulary.get(token, -1)
                    memo[value] = code
            if code >= 0:
                counts[i, code] += 1
    return counts


def _row_contains_any_tuple(
    row_tokens: list[Optional[str]], query_tuples: set[tuple[str, ...]], width: int
) -> bool:
    """Does the row contain all values of some query tuple in distinct
    columns? Greedy bipartite check; table widths are small."""
    present = {}
    for position, token in enumerate(row_tokens):
        if token is not None:
            present.setdefault(token, []).append(position)
    for query_tuple in query_tuples:
        if _assignable(query_tuple, present):
            return True
    return False


def _assignable(values: tuple[str, ...], present: dict[str, list[int]]) -> bool:
    """Can each value be matched to a distinct column position?

    Backtracking bipartite matching; widths are <= a handful of columns.
    """
    used: set[int] = set()

    def backtrack(index: int) -> bool:
        if index == len(values):
            return True
        for position in present.get(values[index], ()):
            if position not in used:
                used.add(position)
                if backtrack(index + 1):
                    return True
                used.remove(position)
        return False

    return backtrack(0)


class CorrelationSeeker(Seeker):
    """C: top-k tables with a column correlating with the target
    (Listing 3, QCR-based, computed entirely in SQL).

    The query is a (join key, numeric target) column pair. Join keys are
    split into ``$k_0$`` (target below mean) and ``$k_1$`` (target >= mean)
    *before* query generation; the in-database QCR is then::

        ABS((2 * SUM(same-quadrant pairs) - COUNT(*)) / COUNT(*))

    ``h`` bounds sampled rows per table via ``RowId < h`` -- convenience
    sampling unless the index was built with ``shuffle_rows`` (BLEND
    (rand)). Unlike the original QCR index, numeric join keys work: keys
    are matched as tokens, not category hashes.

    ``min_qcr`` keeps only column pairs whose estimated |QCR| reaches the
    threshold -- required when the seeker feeds a Difference combiner
    (multicollinearity filters must not subtract weakly-correlated noise).

    ``min_support`` adds ``HAVING COUNT(*) >= min_support``: a column pair
    joining on only a couple of stray key collisions trivially reaches
    |QCR| = 1 and would drown out real correlations. The original sketch
    baseline is immune (it ranks by matched-hash counts), so the paper's
    Listing 3 omits the clause; any lake with cross-table token collisions
    needs it.
    """

    kind = "C"

    def __init__(
        self,
        keys: Iterable[Cell],
        targets: Iterable[Cell],
        k: int = 10,
        h: int = 256,
        min_support: int = 3,
        min_qcr: float = 0.0,
    ) -> None:
        super().__init__(k)
        keys = list(keys)
        targets = list(targets)
        if len(keys) != len(targets):
            raise SeekerError("correlation seeker requires aligned key/target columns")
        if h <= 0:
            raise SeekerError("sample size h must be positive")
        if min_support < 1:
            raise SeekerError("min_support must be at least 1")
        if not 0.0 <= min_qcr <= 1.0:
            raise SeekerError("min_qcr must be within [0, 1]")
        self.h = h
        self.min_support = min_support
        self.min_qcr = min_qcr
        self.k0, self.k1 = split_keys_by_target(keys, targets)
        if not self.k0 and not self.k1:
            raise SeekerError("correlation seeker requires numeric targets")

    @property
    def join_tokens(self) -> list[str]:
        return self.k0 + self.k1

    def sql(self, rewrite: Optional[Rewrite] = None) -> str:
        # The rewrite predicate restricts BOTH subqueries: the join
        # equates TableId across sides, so filtering nums as well is
        # equivalent -- and it turns the nums side from a full index scan
        # into a TableId-index look-up.
        predicate = rewrite.predicate_sql("") if rewrite else ""
        template = (
            "SELECT keys.TableId, "
            "ABS((2.0 * SUM(((keys.CellValue IN (:k0) AND nums.Quadrant = 0) "
            "OR (keys.CellValue IN (:k1) AND nums.Quadrant = 1))::int) "
            "- COUNT(*)) / COUNT(*)) AS qcr "
            "FROM (SELECT * FROM {index} WHERE RowId < :h AND CellValue IN (:qj)"
            + REWRITE_MARKER
            + ") keys "
            "INNER JOIN (SELECT * FROM {index} WHERE RowId < :h "
            "AND Quadrant IS NOT NULL" + REWRITE_MARKER + ") nums "
            "ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId "
            "AND keys.ColumnId <> nums.ColumnId "
            "GROUP BY keys.TableId, nums.ColumnId, keys.ColumnId "
            "HAVING COUNT(*) >= :minsup "
            "AND ABS((2.0 * SUM(((keys.CellValue IN (:k0) AND nums.Quadrant = 0) "
            "OR (keys.CellValue IN (:k1) AND nums.Quadrant = 1))::int) "
            "- COUNT(*)) / COUNT(*)) >= :minqcr "
            "ORDER BY qcr DESC, keys.TableId, nums.ColumnId "
            "LIMIT :fetch"
        )
        return template.replace(REWRITE_MARKER, predicate)

    def params(self, rewrite: Optional[Rewrite] = None) -> dict[str, Any]:
        params: dict[str, Any] = {
            "qj": self.join_tokens,
            "k0": self.k0 if self.k0 else ["\0__never__"],
            "k1": self.k1 if self.k1 else ["\0__never__"],
            "h": self.h,
            "minsup": self.min_support,
            "minqcr": self.min_qcr,
            "fetch": self.k * OVERFETCH,
        }
        if rewrite:
            params["__rewrite_ids"] = list(rewrite.table_ids)
        return params

    def partials(
        self, context: SeekerContext, rewrite: Optional[Rewrite] = None
    ) -> SeekerPartials:
        context.ensure_fresh()
        sql = self.sql(rewrite).format(index=context.index_table)
        result = context.db.execute(sql, self.params(rewrite))
        return ranked_partials(result.rows, self.k * OVERFETCH, skip_none=True)

    def query_cardinality(self) -> int:
        return len(self.k0) + len(self.k1)

    def query_columns(self) -> int:
        return 2

    def query_tokens(self) -> list[str]:
        return self.join_tokens


class Seekers:
    """The paper's API namespace: ``Seekers.SC(...)``, ``Seekers.MC(...)``,
    ``Seekers.KW(...)``, ``Seekers.Correlation(...)`` (alias ``C``)."""

    SC = SingleColumnSeeker
    KW = KeywordSeeker
    MC = MultiColumnSeeker
    Correlation = CorrelationSeeker
    C = CorrelationSeeker


SEEKER_RULE_RANK = {"KW": 0, "SS": 1, "SC": 1, "C": 2, "HY": 2, "MC": 3}
"""Rule-based execution order (paper §VII-B): KW first, SC before C, MC
last -- derived from the operators' index-scan complexities. The semantic
extension's SS seeker (an ANN look-up, sub-linear) shares SC's tier."""
