"""Seeker operators (paper §IV-A, §VI): SC, KW, MC, and Correlation.

Each seeker compiles to a SQL statement over ``AllTables`` -- the same
statements as the paper's Listings 1-3, extended with:

* a ``/*REWRITE*/`` placeholder where the optimizer injects
  combiner-dependent predicates (``TableId [NOT] IN :ir``, §VII-B), and
* deterministic tie-breaking sort keys (TableId, ColumnId), so both
  storage backends return identical rankings.

SC and C group by (TableId, ColumnId); the database returns ranked
*groups*, which the seeker deduplicates to ranked *tables*. An over-fetch
factor bounds the group fan-out per table (exact for tables with up to
``OVERFETCH`` qualifying columns, far above any realistic width).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from ..engine.database import Database
from ..errors import SeekerError
from ..index.quadrant import split_keys_by_target
from ..index.xash import may_contain, tuple_hash
from ..lake.datalake import DataLake
from ..lake.table import Cell, Table, normalize_cell
from .results import ResultList, TableHit

OVERFETCH = 32
REWRITE_MARKER = "/*REWRITE*/"


@dataclass(frozen=True)
class Rewrite:
    """A combiner-dependent predicate injected by the optimizer.

    ``mode`` is ``"intersect"`` (``TableId IN``) or ``"difference"``
    (``TableId NOT IN``); ``table_ids`` come from already-executed sibling
    seekers' intermediate results.
    """

    mode: str
    table_ids: tuple[int, ...]

    def predicate_sql(self, qualifier: str = "") -> str:
        column = f"{qualifier}TableId"
        if self.mode == "intersect":
            return f" AND {column} IN (:__rewrite_ids)"
        if self.mode == "difference":
            return f" AND {column} NOT IN (:__rewrite_ids)"
        raise SeekerError(f"unknown rewrite mode: {self.mode}")


@dataclass
class SeekerContext:
    """Everything a seeker needs at execution time.

    ``semantic`` is the optional vector index of the semantic extension
    (:mod:`repro.core.semantic`); ``None`` unless the deployment called
    ``Blend.enable_semantic()``.
    """

    db: Database
    lake: DataLake
    index_table: str = "AllTables"
    hash_size: int = 63
    xash_chars: int = 2
    semantic: Optional[Any] = None


def _normalize_values(values: Iterable[Cell]) -> list[str]:
    tokens: list[str] = []
    seen: set[str] = set()
    for value in values:
        token = normalize_cell(value)
        if token is not None and token not in seen:
            seen.add(token)
            tokens.append(token)
    return tokens


class Seeker:
    """Base class: a parameterised SQL template plus result shaping."""

    kind: str = "?"

    def __init__(self, k: int = 10) -> None:
        if k < 0:
            raise SeekerError("k must be non-negative")
        self.k = k

    # -- interface ---------------------------------------------------------------

    def sql(self, rewrite: Optional[Rewrite] = None) -> str:
        """The SQL statement with the rewrite placeholder resolved."""
        raise NotImplementedError

    def params(self, rewrite: Optional[Rewrite] = None) -> dict[str, Any]:
        raise NotImplementedError

    def execute(self, context: SeekerContext, rewrite: Optional[Rewrite] = None) -> ResultList:
        raise NotImplementedError

    # -- cost-model features (paper §VII-B) ------------------------------------------

    def query_cardinality(self) -> int:
        """|Q|: the number of query tokens."""
        raise NotImplementedError

    def query_columns(self) -> int:
        """Number of columns in Q."""
        raise NotImplementedError

    def query_tokens(self) -> list[str]:
        """All query tokens (for the average-frequency feature)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(|Q|={self.query_cardinality()}, k={self.k})"


class SingleColumnSeeker(Seeker):
    """SC: top-k tables by best single-column value overlap (Listing 1)."""

    kind = "SC"

    def __init__(self, values: Iterable[Cell], k: int = 10) -> None:
        super().__init__(k)
        self.tokens = _normalize_values(values)
        if not self.tokens:
            raise SeekerError("SC seeker requires at least one non-null value")

    def sql(self, rewrite: Optional[Rewrite] = None) -> str:
        predicate = rewrite.predicate_sql() if rewrite else ""
        template = (
            "SELECT TableId, COUNT(DISTINCT CellValue) AS overlap FROM {index} "
            "WHERE CellValue IN (:q)" + REWRITE_MARKER + " "
            "GROUP BY TableId, ColumnId "
            "ORDER BY overlap DESC, TableId, ColumnId "
            "LIMIT :fetch"
        )
        return template.replace(REWRITE_MARKER, predicate)

    def params(self, rewrite: Optional[Rewrite] = None) -> dict[str, Any]:
        params: dict[str, Any] = {"q": self.tokens, "fetch": self.k * OVERFETCH}
        if rewrite:
            params["__rewrite_ids"] = list(rewrite.table_ids)
        return params

    def execute(self, context: SeekerContext, rewrite: Optional[Rewrite] = None) -> ResultList:
        sql = self.sql(rewrite).format(index=context.index_table)
        result = context.db.execute(sql, self.params(rewrite))
        hits: list[TableHit] = []
        seen: set[int] = set()
        for table_id, overlap in result.rows:
            if table_id not in seen:
                seen.add(table_id)
                hits.append(TableHit(table_id, float(overlap)))
            if len(hits) == self.k:
                break
        return ResultList(hits)

    def query_cardinality(self) -> int:
        return len(self.tokens)

    def query_columns(self) -> int:
        return 1

    def query_tokens(self) -> list[str]:
        return list(self.tokens)


class KeywordSeeker(Seeker):
    """KW: top-k tables by whole-table keyword overlap (§VI).

    The SC variant without ColumnId in the GROUP BY -- overlap is counted
    across the entire table rather than per column.
    """

    kind = "KW"

    def __init__(self, keywords: Iterable[Cell], k: int = 10) -> None:
        super().__init__(k)
        self.tokens = _normalize_values(keywords)
        if not self.tokens:
            raise SeekerError("KW seeker requires at least one keyword")

    def sql(self, rewrite: Optional[Rewrite] = None) -> str:
        predicate = rewrite.predicate_sql() if rewrite else ""
        template = (
            "SELECT TableId, COUNT(DISTINCT CellValue) AS overlap FROM {index} "
            "WHERE CellValue IN (:q)" + REWRITE_MARKER + " "
            "GROUP BY TableId "
            "ORDER BY overlap DESC, TableId "
            "LIMIT :k"
        )
        return template.replace(REWRITE_MARKER, predicate)

    def params(self, rewrite: Optional[Rewrite] = None) -> dict[str, Any]:
        params: dict[str, Any] = {"q": self.tokens, "k": self.k}
        if rewrite:
            params["__rewrite_ids"] = list(rewrite.table_ids)
        return params

    def execute(self, context: SeekerContext, rewrite: Optional[Rewrite] = None) -> ResultList:
        sql = self.sql(rewrite).format(index=context.index_table)
        result = context.db.execute(sql, self.params(rewrite))
        return ResultList(
            TableHit(table_id, float(overlap)) for table_id, overlap in result.rows
        )

    def query_cardinality(self) -> int:
        return len(self.tokens)

    def query_columns(self) -> int:
        return 1

    def query_tokens(self) -> list[str]:
        return list(self.tokens)


class MultiColumnSeeker(Seeker):
    """MC: top-k tables containing query tuples row-aligned (Listing 2).

    Three phases, as in MATE:

    1. **SQL candidate fetch** -- an inner-join chain over ``AllTables``
       finds rows containing a value from every query column.
    2. **Super-key filter** -- candidate rows whose XASH super key cannot
       bit-contain any query tuple's hash are pruned without touching the
       data (no false negatives).
    3. **Exact validation** -- surviving rows are checked against the
       actual lake tuples ("application-level" in the paper).

    Tables are ranked by their number of validated joinable rows.
    """

    kind = "MC"

    def __init__(self, rows: Iterable[Sequence[Cell]] | Table, k: int = 10) -> None:
        super().__init__(k)
        raw_rows = rows.rows if isinstance(rows, Table) else list(rows)
        self.tuples: list[tuple[str, ...]] = []
        for row in raw_rows:
            tokens = tuple(normalize_cell(v) for v in row)
            if any(token is None for token in tokens):
                continue
            self.tuples.append(tokens)  # type: ignore[arg-type]
        if not self.tuples:
            raise SeekerError("MC seeker requires at least one fully non-null tuple")
        widths = {len(t) for t in self.tuples}
        if len(widths) != 1:
            raise SeekerError("MC seeker tuples must all have the same width")
        self.width = widths.pop()
        if self.width < 2:
            raise SeekerError("MC seeker requires a composite key (>= 2 columns)")

    def column_tokens(self, position: int) -> list[str]:
        """Distinct tokens of one query column."""
        seen: set[str] = set()
        out: list[str] = []
        for row in self.tuples:
            token = row[position]
            if token not in seen:
                seen.add(token)
                out.append(token)
        return out

    def sql(self, rewrite: Optional[Rewrite] = None) -> str:
        # The rewrite predicate goes INSIDE every derived table, where it
        # is sargable against the TableId index (Example 2's
        # ``WHERE Q1_index_hits.TableId IN (IR_SC)``, pushed down --
        # equivalent on all join sides because the join equates TableId).
        predicate = rewrite.predicate_sql() if rewrite else ""
        parts = [
            "SELECT Q0.TableId, Q0.RowId, Q0.SuperKey FROM ",
            "(SELECT * FROM {index} WHERE CellValue IN (:q0)" + predicate + ") AS Q0",
        ]
        for i in range(1, self.width):
            parts.append(
                f" INNER JOIN (SELECT * FROM {{index}} WHERE CellValue IN (:q{i})"
                f"{predicate}) AS Q{i}"
                f" ON Q0.TableId = Q{i}.TableId AND Q0.RowId = Q{i}.RowId"
            )
        return "".join(parts)

    def params(self, rewrite: Optional[Rewrite] = None) -> dict[str, Any]:
        params: dict[str, Any] = {
            f"q{i}": self.column_tokens(i) for i in range(self.width)
        }
        if rewrite:
            params["__rewrite_ids"] = list(rewrite.table_ids)
        return params

    def execute(self, context: SeekerContext, rewrite: Optional[Rewrite] = None) -> ResultList:
        candidates = self.fetch_candidates(context, rewrite)
        filtered = self.superkey_filter(candidates, context)
        validated = self.validate(filtered, context)
        counts: dict[int, int] = {}
        for table_id, _ in validated:
            counts[table_id] = counts.get(table_id, 0) + 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ResultList(
            TableHit(table_id, float(count)) for table_id, count in ranked[: self.k]
        )

    # -- the three MC phases, exposed for tests and Table V ------------------------

    def fetch_candidates(
        self, context: SeekerContext, rewrite: Optional[Rewrite] = None
    ) -> list[tuple[int, int, int]]:
        """Phase 1: (TableId, RowId, SuperKey) rows from the SQL join."""
        sql = self.sql(rewrite).format(index=context.index_table)
        result = context.db.execute(sql, self.params(rewrite))
        seen: set[tuple[int, int]] = set()
        candidates: list[tuple[int, int, int]] = []
        for table_id, row_id, super_key_value in result.rows:
            key = (table_id, row_id)
            if key not in seen:
                seen.add(key)
                candidates.append((table_id, row_id, super_key_value))
        return candidates

    def superkey_filter(
        self, candidates: list[tuple[int, int, int]], context: SeekerContext
    ) -> list[tuple[int, int]]:
        """Phase 2: prune rows whose super key cannot contain any tuple."""
        hashes = [
            tuple_hash(t, context.hash_size, context.xash_chars) for t in self.tuples
        ]
        survivors: list[tuple[int, int]] = []
        for table_id, row_id, super_key_value in candidates:
            if any(may_contain(super_key_value, h) for h in hashes):
                survivors.append((table_id, row_id))
        return survivors

    def validate(
        self, candidates: list[tuple[int, int]], context: SeekerContext
    ) -> list[tuple[int, int]]:
        """Phase 3: exact containment check against the lake tuples."""
        query_tuples = set(self.tuples)
        validated: list[tuple[int, int]] = []
        for table_id, row_id in candidates:
            table = context.lake.by_id(table_id)
            if row_id >= table.num_rows:
                continue
            row_tokens = [normalize_cell(v) for v in table.rows[row_id]]
            if _row_contains_any_tuple(row_tokens, query_tuples, self.width):
                validated.append((table_id, row_id))
        return validated

    def query_cardinality(self) -> int:
        return sum(len(self.column_tokens(i)) for i in range(self.width))

    def query_columns(self) -> int:
        return self.width

    def query_tokens(self) -> list[str]:
        tokens: list[str] = []
        for i in range(self.width):
            tokens.extend(self.column_tokens(i))
        return tokens


def _row_contains_any_tuple(
    row_tokens: list[Optional[str]], query_tuples: set[tuple[str, ...]], width: int
) -> bool:
    """Does the row contain all values of some query tuple in distinct
    columns? Greedy bipartite check; table widths are small."""
    present = {}
    for position, token in enumerate(row_tokens):
        if token is not None:
            present.setdefault(token, []).append(position)
    for query_tuple in query_tuples:
        if _assignable(query_tuple, present):
            return True
    return False


def _assignable(values: tuple[str, ...], present: dict[str, list[int]]) -> bool:
    """Can each value be matched to a distinct column position?

    Backtracking bipartite matching; widths are <= a handful of columns.
    """
    used: set[int] = set()

    def backtrack(index: int) -> bool:
        if index == len(values):
            return True
        for position in present.get(values[index], ()):
            if position not in used:
                used.add(position)
                if backtrack(index + 1):
                    return True
                used.remove(position)
        return False

    return backtrack(0)


class CorrelationSeeker(Seeker):
    """C: top-k tables with a column correlating with the target
    (Listing 3, QCR-based, computed entirely in SQL).

    The query is a (join key, numeric target) column pair. Join keys are
    split into ``$k_0$`` (target below mean) and ``$k_1$`` (target >= mean)
    *before* query generation; the in-database QCR is then::

        ABS((2 * SUM(same-quadrant pairs) - COUNT(*)) / COUNT(*))

    ``h`` bounds sampled rows per table via ``RowId < h`` -- convenience
    sampling unless the index was built with ``shuffle_rows`` (BLEND
    (rand)). Unlike the original QCR index, numeric join keys work: keys
    are matched as tokens, not category hashes.

    ``min_qcr`` keeps only column pairs whose estimated |QCR| reaches the
    threshold -- required when the seeker feeds a Difference combiner
    (multicollinearity filters must not subtract weakly-correlated noise).

    ``min_support`` adds ``HAVING COUNT(*) >= min_support``: a column pair
    joining on only a couple of stray key collisions trivially reaches
    |QCR| = 1 and would drown out real correlations. The original sketch
    baseline is immune (it ranks by matched-hash counts), so the paper's
    Listing 3 omits the clause; any lake with cross-table token collisions
    needs it.
    """

    kind = "C"

    def __init__(
        self,
        keys: Iterable[Cell],
        targets: Iterable[Cell],
        k: int = 10,
        h: int = 256,
        min_support: int = 3,
        min_qcr: float = 0.0,
    ) -> None:
        super().__init__(k)
        keys = list(keys)
        targets = list(targets)
        if len(keys) != len(targets):
            raise SeekerError("correlation seeker requires aligned key/target columns")
        if h <= 0:
            raise SeekerError("sample size h must be positive")
        if min_support < 1:
            raise SeekerError("min_support must be at least 1")
        if not 0.0 <= min_qcr <= 1.0:
            raise SeekerError("min_qcr must be within [0, 1]")
        self.h = h
        self.min_support = min_support
        self.min_qcr = min_qcr
        self.k0, self.k1 = split_keys_by_target(keys, targets)
        if not self.k0 and not self.k1:
            raise SeekerError("correlation seeker requires numeric targets")

    @property
    def join_tokens(self) -> list[str]:
        return self.k0 + self.k1

    def sql(self, rewrite: Optional[Rewrite] = None) -> str:
        # The rewrite predicate restricts BOTH subqueries: the join
        # equates TableId across sides, so filtering nums as well is
        # equivalent -- and it turns the nums side from a full index scan
        # into a TableId-index look-up.
        predicate = rewrite.predicate_sql("") if rewrite else ""
        template = (
            "SELECT keys.TableId, "
            "ABS((2.0 * SUM(((keys.CellValue IN (:k0) AND nums.Quadrant = 0) "
            "OR (keys.CellValue IN (:k1) AND nums.Quadrant = 1))::int) "
            "- COUNT(*)) / COUNT(*)) AS qcr "
            "FROM (SELECT * FROM {index} WHERE RowId < :h AND CellValue IN (:qj)"
            + REWRITE_MARKER
            + ") keys "
            "INNER JOIN (SELECT * FROM {index} WHERE RowId < :h "
            "AND Quadrant IS NOT NULL" + REWRITE_MARKER + ") nums "
            "ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId "
            "AND keys.ColumnId <> nums.ColumnId "
            "GROUP BY keys.TableId, nums.ColumnId, keys.ColumnId "
            "HAVING COUNT(*) >= :minsup "
            "AND ABS((2.0 * SUM(((keys.CellValue IN (:k0) AND nums.Quadrant = 0) "
            "OR (keys.CellValue IN (:k1) AND nums.Quadrant = 1))::int) "
            "- COUNT(*)) / COUNT(*)) >= :minqcr "
            "ORDER BY qcr DESC, keys.TableId, nums.ColumnId "
            "LIMIT :fetch"
        )
        return template.replace(REWRITE_MARKER, predicate)

    def params(self, rewrite: Optional[Rewrite] = None) -> dict[str, Any]:
        params: dict[str, Any] = {
            "qj": self.join_tokens,
            "k0": self.k0 if self.k0 else ["\0__never__"],
            "k1": self.k1 if self.k1 else ["\0__never__"],
            "h": self.h,
            "minsup": self.min_support,
            "minqcr": self.min_qcr,
            "fetch": self.k * OVERFETCH,
        }
        if rewrite:
            params["__rewrite_ids"] = list(rewrite.table_ids)
        return params

    def execute(self, context: SeekerContext, rewrite: Optional[Rewrite] = None) -> ResultList:
        sql = self.sql(rewrite).format(index=context.index_table)
        result = context.db.execute(sql, self.params(rewrite))
        hits: list[TableHit] = []
        seen: set[int] = set()
        for table_id, qcr in result.rows:
            if qcr is None:
                continue
            if table_id not in seen:
                seen.add(table_id)
                hits.append(TableHit(table_id, float(qcr)))
            if len(hits) == self.k:
                break
        return ResultList(hits)

    def query_cardinality(self) -> int:
        return len(self.k0) + len(self.k1)

    def query_columns(self) -> int:
        return 2

    def query_tokens(self) -> list[str]:
        return self.join_tokens


class Seekers:
    """The paper's API namespace: ``Seekers.SC(...)``, ``Seekers.MC(...)``,
    ``Seekers.KW(...)``, ``Seekers.Correlation(...)`` (alias ``C``)."""

    SC = SingleColumnSeeker
    KW = KeywordSeeker
    MC = MultiColumnSeeker
    Correlation = CorrelationSeeker
    C = CorrelationSeeker


SEEKER_RULE_RANK = {"KW": 0, "SS": 1, "SC": 1, "C": 2, "MC": 3}
"""Rule-based execution order (paper §VII-B): KW first, SC before C, MC
last -- derived from the operators' index-scan complexities. The semantic
extension's SS seeker (an ANN look-up, sub-linear) shares SC's tier."""
