"""The four complex discovery tasks of the paper's Table III, as BLEND
plans (§VIII-B). Each builder is deliberately as short as the paper's
reported plan definitions -- their line counts are measured by the
Table III benchmark and compared against the federated baselines in
:mod:`repro.baselines.federation`.
"""

from __future__ import annotations


from .combiners import Combiners
from .plan import Plan
from .seekers import Seekers


def negative_examples_plan(positive, negative, k=10):
    """Discovery with negative examples: two MC seekers + Difference."""
    plan = Plan()
    plan.add("pos", Seekers.MC(positive), k=k)
    plan.add("neg", Seekers.MC(negative), k=k)
    plan.add("exclude", Combiners.Difference(k=k), ["pos", "neg"])
    return plan


def imputation_plan(examples, queries, k=10):
    """Example-based data imputation: MC + SC + Intersection (Fig. 4)."""
    plan = Plan()
    plan.add("examples", Seekers.MC(examples), k=k)
    plan.add("query", Seekers.SC(queries), k=k)
    plan.add("intersection", Combiners.Intersect(k=k), ["examples", "query"])
    return plan


def feature_discovery_plan(join_rows, keys, target, features, k=10):
    """Multicollinearity-aware feature discovery: one C seeker for the
    target, one C seeker + Difference per existing feature (the
    multicollinearity filter), and an MC seeker for joinability."""
    plan = Plan()
    plan.add("target_corr", Seekers.Correlation(keys, target, min_qcr=0.3), k=3 * k)
    previous = "target_corr"
    for index, feature in enumerate(features):
        plan.add(f"feat{index}", Seekers.Correlation(keys, feature, min_qcr=0.5), k=3 * k)
        plan.add(f"diff{index}", Combiners.Difference(k=3 * k), [previous, f"feat{index}"])
        previous = f"diff{index}"
    plan.add("joinable", Seekers.MC(join_rows), k=3 * k)
    plan.add("out", Combiners.Intersect(k=k), [previous, "joinable"])
    return plan


def multi_objective_plan_no_imputation(keywords, examples, joinkey, target, k=10):
    """Multi-objective discovery (Listing 4 without the imputation
    sub-plan, as evaluated in §VIII-B5)."""
    plan = Plan()
    plan.add("kw", Seekers.KW(keywords, k=k))
    for clm in examples.columns:
        plan.add(clm, Seekers.SC(examples.column_values(clm), k=10 * k))
    plan.add("counter", Combiners.Counter(k=k), list(examples.columns))
    plan.add("correlation", Seekers.Correlation(
        examples.column_values(joinkey), examples.column_values(target), k=k))
    plan.add("union", Combiners.Union(k=4 * k), ["kw", "counter", "correlation"])
    return plan
