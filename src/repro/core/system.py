"""The ``Blend`` facade: offline indexing + online optimized execution.

Typical use::

    from repro import Blend, Plan, Seekers, Combiners

    blend = Blend(lake, backend="column")
    blend.build_index()

    plan = Plan()
    plan.add("pos", Seekers.MC(examples, k=10))
    plan.add("neg", Seekers.MC(negative_examples, k=10))
    plan.add("out", Combiners.Difference(k=10), ["pos", "neg"])
    result = blend.run(plan)
    print(result.output.table_ids())

Convenience task methods (``join_search``, ``union_search``, ...) build
the standard plans of §VII-A.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..engine.database import Database
from ..errors import BlendError
from ..index.alltables import (
    IndexBuildReport,
    IndexConfig,
    _check_maintenance,
    build_alltables,
    deindex_table,
    index_table,
    reindex_table,
)
from ..index.stats import LakeStatistics
from ..lake.datalake import DataLake
from ..lake.table import Cell, Table
from .combiners import Combiners
from .executor import PlanExecutor, PlanRunResult
from .optimizer.cost_model import TrainingReport, train_cost_model
from .optimizer.planner import ExecutionPlan, Optimizer
from .plan import Plan
from .results import ResultList, SeekerPartials
from .seekers import Seeker, SeekerContext, Seekers


class Blend:
    """A BLEND deployment over one data lake."""

    def __init__(
        self,
        lake: DataLake,
        backend: str = "column",
        index_config: IndexConfig = IndexConfig(),
    ) -> None:
        self.lake = lake
        self.db = Database(backend=backend)
        self.index_config = index_config
        self._indexed = False
        self._stats: Optional[LakeStatistics] = None
        # Deferred statistics thunk (snapshot loads install one): the
        # frequency table materialises on first use instead of on the
        # warm-start path, so serving processes that never touch the
        # optimizer never pay for it.
        self._stats_loader = None
        # Identity of the on-disk snapshot this deployment was loaded
        # from (or last fully saved to) -- what incremental saves diff
        # against. ``None`` for deployments that never touched disk.
        self._snapshot_base = None
        self.optimizer = Optimizer()

    # -- offline phase ---------------------------------------------------------

    def build_index(self) -> IndexBuildReport:
        """Offline phase: build ``AllTables`` plus lake statistics.

        Statistics are computed here (not lazily) because the paper's
        offline phase owns all corpus-wide scans; the online optimizer
        must only read precomputed state.

        With ``IndexConfig(semantic=True)`` the offline phase also embeds
        every lake column into ``AllVectors`` + the HNSW (the semantic
        extension), so build, load, and shard paths configure semantic
        search uniformly from the one config object.
        """
        report = build_alltables(self.lake, self.db, self.index_config)
        self._indexed = True
        self._stats = LakeStatistics.from_lake(self.lake)
        if self.index_config.semantic:
            self.enable_semantic(dimensions=self.index_config.semantic_dimensions)
        return report

    @property
    def stats(self) -> LakeStatistics:
        """Lake statistics for the cost model (built lazily, cached)."""
        if self._stats is None:
            self._stats = self._resolve_stats_loader() or LakeStatistics.from_lake(
                self.lake
            )
        return self._stats

    def _resolve_stats_loader(self) -> Optional[LakeStatistics]:
        """Run (and drop) a deferred snapshot statistics thunk, if any.

        Lifecycle methods call this before applying their exact stats
        deltas -- updating nothing while a loader is pending would leave
        the eventually-materialised snapshot statistics stale."""
        loader, self._stats_loader = self._stats_loader, None
        return loader() if loader is not None else None

    # -- snapshots: persist the built system (offline/online split) ------------------

    def save(
        self,
        path,
        include_lake: bool = True,
        overwrite: bool = False,
        incremental: str = "auto",
    ):
        """Persist the entire built deployment -- sealed storage arrays,
        ``AllTables``/``AllVectors`` postings and token dictionaries,
        declared indexes, lake statistics, cost-model weights, lake
        metadata (stable ids and holes) and, by default, the lake cells
        themselves -- into a versioned snapshot directory that
        :meth:`load` restores near-instantly (payloads are raw ``.npy``
        files opened with ``mmap_mode="r"``). Returns the path written.

        When *path* is the snapshot this deployment was loaded from (or
        last fully saved to), only the mutations since that base are
        written -- O(delta) instead of O(lake) (``incremental="never"``
        forces a full rewrite, ``"always"`` errors rather than fall back
        to one). A full save refuses a non-empty *path* unless
        ``overwrite=True``, which replaces it atomically
        (write-to-temp + rename).

        See :mod:`repro.snapshot` for the on-disk layout, versioning
        policy, and integrity checking.
        """
        from pathlib import Path

        from ..snapshot import save_blend, save_blend_delta

        if incremental not in ("auto", "always", "never"):
            raise BlendError(
                f"incremental must be 'auto', 'always' or 'never', "
                f"got {incremental!r}"
            )
        base = self._snapshot_base
        if (
            incremental != "never"
            and base is not None
            and Path(base.path) == Path(path).resolve()
        ):
            return save_blend_delta(self, path)
        if incremental == "always":
            raise BlendError(
                "incremental='always' requires saving into the snapshot this "
                "deployment was loaded from; this deployment's base is "
                + (repr(base.path) if base is not None else "not on disk")
            )
        return save_blend(self, path, include_lake=include_lake, overwrite=overwrite)

    def save_delta(self, path=None):
        """Persist only the mutations since this deployment's base
        snapshot (``delta.json`` + per-table payloads beside the base
        manifest) -- O(delta) where :meth:`save` from scratch is O(lake).
        *path* defaults to the base snapshot directory. Returns the path
        written."""
        from ..snapshot import save_blend_delta

        if path is None:
            if self._snapshot_base is None:
                raise BlendError(
                    "this deployment has no base snapshot; save() it fully first"
                )
            path = self._snapshot_base.path
        return save_blend_delta(self, path)

    def delta_stats(self) -> dict:
        """Aggregate base-vs-delta occupancy across the maintained
        storage tables: how much of the deployment's state lives in
        delta segments and tombstones rather than the frozen base --
        the compaction trigger's input (see
        :mod:`repro.serving.compaction`)."""
        base_rows = delta_rows = deleted_rows = 0
        frozen = False
        for name in self.db.table_names():
            stats = self.db.table(name).delta_stats()
            frozen = frozen or stats["frozen"]
            base_rows += stats["base_rows"]
            delta_rows += stats["delta_rows"]
            deleted_rows += stats["deleted_rows"]
        churn = delta_rows + deleted_rows
        return {
            "frozen": frozen,
            "base_rows": base_rows,
            "delta_rows": delta_rows,
            "deleted_rows": deleted_rows,
            "delta_fraction": churn / max(1, base_rows + delta_rows),
        }

    @classmethod
    def load(
        cls,
        path,
        lake: Optional[DataLake] = None,
        backend: Optional[str] = None,
        hash_size: Optional[int] = None,
        mmap: bool = True,
        verify: bool = True,
        delta: bool = True,
    ) -> "Blend":
        """Warm-start a deployment from a :meth:`save` snapshot.

        The loaded system is functionally identical to the fresh build
        it was saved from: same seeker results, same statistics, same
        optimizer behaviour, byte-identical sealed storage. Lifecycle
        ops keep working -- memory-mapped arrays are promoted to private
        copies on first mutation (copy-on-write), so N serving processes
        can share one snapshot on disk. Pass *lake* to skip the
        snapshot's cell payload (it is validated against the manifest's
        lake metadata); *backend* / *hash_size* assert the snapshot
        matches the expected deployment. Corrupted, truncated, or
        version-mismatched snapshots raise
        :class:`~repro.errors.SnapshotError` naming the offending file.

        ``delta=True`` (the default) replays the directory's incremental
        layer -- mutations persisted by :meth:`save_delta` -- on top of
        the base; ``delta=False`` recovers the bare base snapshot, never
        reading the (possibly damaged) delta files at all.
        """
        from ..snapshot import load_blend

        return load_blend(
            cls,
            path,
            lake=lake,
            backend=backend,
            hash_size=hash_size,
            mmap=mmap,
            verify=verify,
            delta=delta,
        )

    def train_optimizer(
        self, samples_per_type: int = 40, seed: int = 0
    ) -> TrainingReport:
        """Train the learned cost model on this deployment (paper: once
        per lake installation)."""
        model, report = train_cost_model(
            self.context(), self.stats, self.lake, samples_per_type, seed
        )
        self.optimizer = Optimizer(model)
        return report

    # -- maintenance: the table lifecycle (paper §V) ---------------------------------

    def _check_maintainable(self) -> None:
        """Reject unmaintainable deployments BEFORE mutating the lake:
        the lifecycle methods must never leave the lake changed with the
        index maintenance refused (a fresh-generation context would then
        silently serve the desynced index)."""
        if self._indexed:
            _check_maintenance(self.db, self.index_config)

    def add_table(self, table: Table, table_id: Optional[int] = None) -> int:
        """Maintenance path: add one table to the lake AND the index
        incrementally (no rebuild). Returns the new table id.

        The unified single-relation layout makes this an append (paper
        §V); lake statistics are updated in place -- every field, via the
        vectorised token-count kernel rather than a per-cell Python loop
        -- so the cost model sees the new tokens exactly as a fresh
        offline scan would.

        *table_id* places the table at an explicit id instead of the next
        free slot -- the sharded-serving path, where the coordinator
        allocates globally-unique ids and each shard's lake holds only
        its own slice of the id space (see
        :meth:`~repro.lake.datalake.DataLake.add_at`).
        """
        self._check_maintainable()
        if self._stats is None:
            self._stats = self._resolve_stats_loader()
        if table_id is None:
            table_id = self.lake.add(table)
        else:
            table_id = self.lake.add_at(table_id, table)
        if self._indexed:
            index_table(table_id, table, self.db, self.index_config)
        if self._stats is not None:
            self._stats.add_table(table)
        semantic = getattr(self, "_semantic", None)
        if semantic is not None:
            semantic.add_table(table_id, table, self.db if self._indexed else None)
        return table_id

    def remove_table(self, table_id: int) -> Table:
        """Maintenance path: remove one table from the lake AND the index
        (its ``AllTables`` rows -- and ``AllVectors`` rows when the
        semantic extension is enabled -- are deleted without touching any
        other table's super keys). The table id becomes a permanent hole;
        statistics are decremented exactly. Returns the removed table.

        Contexts created before the removal raise
        :class:`~repro.errors.StaleContextError` instead of silently
        serving the dead id; ``Blend.run`` always executes on a fresh
        context.
        """
        self._check_maintainable()
        if self._stats is None:
            self._stats = self._resolve_stats_loader()
        removed = self.lake.remove(table_id)
        if self._indexed:
            deindex_table(table_id, self.db, self.index_config)
        if self._stats is not None:
            self._stats.remove_table(removed)
        semantic = getattr(self, "_semantic", None)
        if semantic is not None:
            semantic.remove_table(table_id, self.db if self._indexed else None)
        return removed

    def replace_table(self, table_id: int, table: Table) -> Table:
        """Maintenance path: replace the table at *table_id* in place
        (same id) -- its old index rows are deleted and the new table is
        appended under the same id, so every seeker immediately serves
        the new contents. Returns the previous table."""
        self._check_maintainable()
        if self._stats is None:
            self._stats = self._resolve_stats_loader()
        previous = self.lake.replace(table_id, table)
        if self._indexed:
            reindex_table(table_id, table, self.db, self.index_config)
        if self._stats is not None:
            self._stats.replace_table(previous, table)
        semantic = getattr(self, "_semantic", None)
        if semantic is not None:
            semantic.replace_table(table_id, table, self.db if self._indexed else None)
        return previous

    def compact_index(self) -> None:
        """Force physical compaction of the maintained relations: delete
        tombstones dropped, text dictionaries re-encoded, rows restored
        to the offline build's clustering order -- after which storage is
        byte-identical to a from-scratch ``build_index()`` on the current
        lake (the rebuild-parity invariant; compaction also triggers
        automatically once deletes cross the storage threshold)."""
        if not self._indexed:
            raise BlendError("call build_index() before compacting")
        self.db.compact(self.index_config.table_name)
        if self.db.has_table("AllVectors"):
            self.db.compact("AllVectors")

    def enable_semantic(self, dimensions: int = 64, persist: bool = True) -> "Blend":
        """Build the semantic extension (paper §X future work): embed
        every lake column, persist the vectors in-DB as ``AllVectors``,
        and serve SS seekers from an HNSW over them. Returns self.

        Equivalent to building with ``IndexConfig(semantic=True)``; the
        config is updated to match so snapshots and shard saves carry the
        semantic setting uniformly."""
        from dataclasses import replace

        from .semantic import SemanticIndex

        self._semantic = SemanticIndex(self.lake, dimensions=dimensions)
        self.index_config = replace(
            self.index_config, semantic=True, semantic_dimensions=dimensions
        )
        if persist and self._indexed:
            self._semantic.persist(self.db)
        return self

    def context(self) -> SeekerContext:
        if not self._indexed:
            raise BlendError("call build_index() before executing plans")
        return SeekerContext(
            db=self.db,
            lake=self.lake,
            index_table=self.index_config.table_name,
            hash_size=self.index_config.hash_size,
            xash_chars=self.index_config.xash_chars,
            semantic=getattr(self, "_semantic", None),
            generation=self.lake.generation,
        )

    def execute_batch(self, seekers: Sequence["Seeker"]) -> list[ResultList]:
        """Execute several independent seekers against one context,
        coalescing same-modality queries into shared index passes (the
        serving tier's batch window). Results are positionally aligned
        and identical to per-seeker ``execute`` -- see
        :mod:`repro.core.batch`."""
        from .batch import execute_batch

        return execute_batch(seekers, self.context())

    def execute_batch_partials(
        self, seekers: Sequence["Seeker"]
    ) -> list["SeekerPartials"]:
        """The partials form of :meth:`execute_batch`: one mergeable
        :class:`~repro.core.results.SeekerPartials` per seeker instead of
        the final ranking -- what a shard worker ships to the
        scatter-gather coordinator (:mod:`repro.serving.sharded`)."""
        from .batch import execute_batch_partials

        return execute_batch_partials(seekers, self.context())

    def warm(self) -> None:
        """Force every lazily-built read structure (sealed columns,
        postings, dictionary reverse maps) so concurrent readers never
        race on first-touch materialization. Serving deployments call
        this once before a snapshot starts taking traffic."""
        self.db.warm()

    # -- unified discovery facade ---------------------------------------------------

    def discover(
        self,
        query,
        modalities: str | Sequence[str] = ("join",),
        k: int = 10,
        *,
        about: Optional[Iterable[Cell]] = None,
        alpha: float = 0.5,
        rrf_k: float = 60.0,
        fusion: str = "rrf",
        exact: Optional[bool] = None,
    ) -> "DiscoveryResult":
        """One entry point for every discovery modality, returning a typed
        :class:`~repro.core.hybrid.DiscoveryResult`.

        *modalities* selects among ``"keyword"`` (KW), ``"join"`` (SC),
        ``"multi_column"`` (MC), ``"semantic"`` (SS), ``"correlation"``
        (C; *query* binds a ``(keys, targets)`` pair) and ``"hybrid"``
        (HY -- exact+semantic reciprocal-rank fusion, steered by *about*
        / *alpha* / *rrf_k*). With several modalities, each runs as one
        node of a single plan and the per-modality rankings fuse into
        ``result.output`` by the same reciprocal-rank rule.

        ``fusion="learned"`` weighs lanes (and multi-modality fusion) by
        the trained cost model's inverse runtime estimates instead of
        uniformly/alpha. *exact* forces the semantic lane's brute-force
        mode (defaults: SS approximate, HY exact -- the deterministic
        sharding mode).

        The legacy task methods (``keyword_search``, ``join_search``,
        ``semantic_search``, ``multi_column_join_search``) are thin
        wrappers over this facade.
        """
        from .hybrid import DiscoveryResult, HybridSeeker
        from .results import fuse_rankings
        from .semantic import SemanticSeeker

        if fusion not in ("rrf", "learned"):
            raise BlendError(f"fusion must be 'rrf' or 'learned', got {fusion!r}")
        if isinstance(modalities, str):
            modalities = (modalities,)
        selected = tuple(dict.fromkeys(modalities))
        if not selected:
            raise BlendError("discover() needs at least one modality")

        def _operator(modality: str) -> Seeker:
            if modality == "keyword":
                return Seekers.KW(query, k=k)
            if modality == "join":
                return Seekers.SC(query, k=k)
            if modality == "multi_column":
                return Seekers.MC(query, k=k)
            if modality == "semantic":
                values = query if about is None else about
                return SemanticSeeker(
                    values, k=k, exact=False if exact is None else exact
                )
            if modality == "correlation":
                try:
                    keys, targets = query
                except (TypeError, ValueError):
                    raise BlendError(
                        "the correlation modality binds a (keys, targets) pair"
                    ) from None
                return Seekers.Correlation(keys, targets, k=k)
            if modality == "hybrid":
                seeker = HybridSeeker(
                    query,
                    about=about,
                    k=k,
                    alpha=alpha,
                    rrf_k=rrf_k,
                    exact=True if exact is None else exact,
                )
                if fusion == "learned":
                    seeker.calibrate(self.optimizer.cost_model, self.stats)
                return seeker
            raise BlendError(
                f"unknown discovery modality {modality!r}; one of "
                "keyword/join/multi_column/semantic/correlation/hybrid"
            )

        plan = Plan()
        operators = {modality: _operator(modality) for modality in selected}
        for modality, operator in operators.items():
            plan.add(modality, operator)
        run = self.run(plan)
        per_modality = {
            modality: run.result_of(modality) for modality in selected
        }
        if len(selected) == 1:
            output = per_modality[selected[0]]
        else:
            if fusion == "learned":
                estimates = [
                    max(
                        self.optimizer.cost_model.estimate(
                            operators[modality], self.stats
                        ),
                        1e-12,
                    )
                    for modality in selected
                ]
                total = sum(1.0 / estimate for estimate in estimates)
                weights = [1.0 / estimate / total for estimate in estimates]
            else:
                weights = [1.0] * len(selected)
            output = fuse_rankings(
                [
                    (weight, per_modality[modality])
                    for weight, modality in zip(weights, selected)
                ],
                k,
                rrf_k=rrf_k,
            )
        return DiscoveryResult(
            query=query,
            modalities=selected,
            k=k,
            output=output,
            per_modality=per_modality,
        )

    def hybrid_search(
        self,
        values: Iterable[Cell],
        about: Optional[Iterable[Cell]] = None,
        k: int = 10,
        alpha: float = 0.5,
    ) -> ResultList:
        """Hybrid exact+semantic discovery via the HY fusion seeker."""
        return self.discover(
            values, modalities=("hybrid",), k=k, about=about, alpha=alpha
        ).output

    def semantic_search(self, values: Iterable[Cell], k: int = 10) -> ResultList:
        """Semantic join/union discovery via the SS seeker extension."""
        return self.discover(values, modalities=("semantic",), k=k).output

    # -- online phase ----------------------------------------------------------

    def plan_for(self, plan: Plan, optimize: bool = True) -> ExecutionPlan:
        """The execution plan the optimizer would produce (introspection)."""
        if optimize:
            return self.optimizer.optimize(plan, self.stats)
        return Optimizer.unoptimized(plan)

    def run(self, plan: Plan, optimize: bool = True) -> PlanRunResult:
        """Optimize (unless ``optimize=False`` -- the paper's B-NO) and
        execute a discovery plan."""
        execution_plan = self.plan_for(plan, optimize)
        return PlanExecutor(self.context()).run(plan, execution_plan)

    # -- standard tasks (§VII-A) ---------------------------------------------------

    def keyword_search(self, keywords: Iterable[Cell], k: int = 10) -> ResultList:
        """Simple task: a single KW seeker (thin ``discover`` wrapper)."""
        return self.discover(keywords, modalities=("keyword",), k=k).output

    def join_search(self, values: Iterable[Cell], k: int = 10) -> ResultList:
        """Single-column join discovery (the JOSIE task; thin
        ``discover`` wrapper)."""
        return self.discover(values, modalities=("join",), k=k).output

    def multi_column_join_search(
        self, rows: Iterable[Sequence[Cell]] | Table, k: int = 10
    ) -> ResultList:
        """Multi-column join discovery (the MATE task; thin ``discover``
        wrapper)."""
        return self.discover(rows, modalities=("multi_column",), k=k).output

    def correlation_search(
        self,
        keys: Iterable[Cell],
        targets: Iterable[Cell],
        k: int = 10,
        h: int = 256,
        min_support: int = 3,
    ) -> ResultList:
        """Correlation discovery (the QCR task)."""
        plan = Plan().add(
            "corr",
            Seekers.Correlation(keys, targets, k=k, h=h, min_support=min_support),
        )
        return self.run(plan).output

    def union_search(
        self, table: Table, k: int = 10, per_column_k: int = 100
    ) -> ResultList:
        """Union discovery: one SC seeker per query column + a Counter.

        ``per_column_k`` exceeds ``k`` so tables relevant only in
        combination survive the per-seeker cut (paper §VII-A).
        """
        result = self.run(union_search_plan(table, k, per_column_k)).output
        query_id = self.lake.id_of(table.name) if table.name in self.lake else None
        if query_id is not None and query_id in result:
            result = ResultList(hit for hit in result if hit.table_id != query_id)
        return result


def union_search_plan(table: Table, k: int = 10, per_column_k: int = 100) -> Plan:
    """The §VII-A union-search plan for a query table."""
    plan = Plan()
    column_nodes = []
    for position, column in enumerate(table.columns):
        values = [v for v in table.column_values(column) if v is not None]
        if not values:
            continue
        node = f"sc_{position}_{column}"
        plan.add(node, Seekers.SC(values, k=per_column_k))
        column_nodes.append(node)
    if not column_nodes:
        raise BlendError(f"query table {table.name!r} has no non-null columns")
    plan.add("counter", Combiners.Counter(k=k), column_nodes)
    return plan


def multi_objective_plan(
    keywords: Iterable[Cell],
    examples: Table,
    join_key_column: str,
    target_column: str,
    queries: Optional[Iterable[Cell]] = None,
    k: int = 10,
    per_column_k: int = 100,
    include_imputation: bool = True,
) -> Plan:
    """The multi-objective discovery plan of Listing 4: keyword search +
    union search + (optional) data imputation + correlation search,
    aggregated by a Union combiner."""
    plan = Plan()
    union_inputs: list[str] = []

    # Keyword search.
    plan.add("kw", Seekers.KW(keywords, k=k))
    union_inputs.append("kw")

    # Union search sub-plan (one SC per column + Counter).
    column_nodes = []
    for position, column in enumerate(examples.columns):
        values = [v for v in examples.column_values(column) if v is not None]
        if not values:
            continue
        node = f"clm_{position}"
        plan.add(node, Seekers.SC(values, k=per_column_k))
        column_nodes.append(node)
    plan.add("counter", Combiners.Counter(k=k), column_nodes)
    union_inputs.append("counter")

    # Data imputation sub-plan (MC + SC + Intersection).
    if include_imputation:
        if queries is None:
            raise BlendError("imputation sub-plan requires `queries`")
        plan.add("examples", Seekers.MC(examples, k=k))
        plan.add("query", Seekers.SC(queries, k=k))
        plan.add("intersection", Combiners.Intersect(k=k), ["examples", "query"])
        union_inputs.append("intersection")

    # Correlation search.
    plan.add(
        "correlation",
        Seekers.Correlation(
            examples.column_values(join_key_column),
            examples.column_values(target_column),
            k=k,
        ),
    )
    union_inputs.append("correlation")

    plan.add("union", Combiners.Union(k=4 * k), union_inputs)
    return plan
