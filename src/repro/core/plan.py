"""The declarative Plan API and its DAG representation (paper §IV, §VII-A).

A discovery task is a :class:`Plan`: named nodes, each either a seeker or
a combiner, wired by input references::

    plan = Plan()
    plan.add("pos", Seekers.MC(p_examples, k=10))
    plan.add("neg", Seekers.MC(n_examples, k=10))
    plan.add("exclude", Combiners.Difference(k=10), ["pos", "neg"])
    plan.add("dep", Seekers.SC(departments, k=10))
    plan.add("out", Combiners.Intersect(k=10), ["exclude", "dep"])

Nodes must be added after their inputs (so plans are acyclic by
construction); validation additionally checks name uniqueness, input
existence, seeker/combiner placement, and combiner arity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..errors import PlanError
from .combiners import Combiner
from .seekers import Seeker

Operator = Union[Seeker, Combiner]


@dataclass(frozen=True)
class PlanNode:
    """One named operator in the DAG."""

    name: str
    operator: Operator
    inputs: tuple[str, ...]

    @property
    def is_seeker(self) -> bool:
        return isinstance(self.operator, Seeker)

    @property
    def is_combiner(self) -> bool:
        return isinstance(self.operator, Combiner)


class Plan:
    """An ordered DAG of seekers and combiners."""

    def __init__(self) -> None:
        self._nodes: dict[str, PlanNode] = {}
        self._order: list[str] = []

    # -- construction ------------------------------------------------------------

    def add(
        self,
        name: str,
        operator: Operator,
        inputs: Optional[Iterable[str]] = None,
        k: Optional[int] = None,
    ) -> "Plan":
        """Add a node. Seekers take no inputs; combiners require them.

        ``k`` optionally overrides the operator's top-k (matching the
        paper's ``plan.add('P_examples', Seekers.MC(P), k=10)`` style).
        Returns the plan for chaining.
        """
        if not name:
            raise PlanError("node name must be non-empty")
        if name in self._nodes:
            raise PlanError(f"duplicate node name: {name!r}")
        if not isinstance(operator, (Seeker, Combiner)):
            raise PlanError(
                f"operator must be a Seeker or Combiner, got {type(operator).__name__}"
            )
        input_names = tuple(inputs) if inputs is not None else ()
        if isinstance(operator, Seeker) and input_names:
            raise PlanError(f"seeker node {name!r} cannot take inputs")
        if isinstance(operator, Combiner):
            if not input_names:
                raise PlanError(f"combiner node {name!r} requires inputs")
            missing = [i for i in input_names if i not in self._nodes]
            if missing:
                raise PlanError(
                    f"node {name!r} references undefined inputs: {missing} "
                    "(inputs must be added before the nodes that consume them)"
                )
            if len(set(input_names)) != len(input_names):
                raise PlanError(f"node {name!r} lists an input twice")
            operator.validate_arity(len(input_names))
        if k is not None:
            if k < 0:
                raise PlanError("k must be non-negative")
            operator.k = k
        self._nodes[name] = PlanNode(name=name, operator=operator, inputs=input_names)
        self._order.append(name)
        return self

    # -- introspection -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> PlanNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise PlanError(f"unknown plan node: {name!r}") from None

    def nodes(self) -> list[PlanNode]:
        """Nodes in insertion order (the unoptimized execution order)."""
        return [self._nodes[name] for name in self._order]

    def seekers(self) -> list[PlanNode]:
        return [node for node in self.nodes() if node.is_seeker]

    def combiners(self) -> list[PlanNode]:
        return [node for node in self.nodes() if node.is_combiner]

    def consumers_of(self, name: str) -> list[PlanNode]:
        """Nodes that take *name* as an input."""
        self.node(name)  # validate
        return [node for node in self.nodes() if name in node.inputs]

    def sinks(self) -> list[PlanNode]:
        """Output nodes: nodes no other node consumes."""
        consumed = {i for node in self.nodes() for i in node.inputs}
        return [node for node in self.nodes() if node.name not in consumed]

    def sink(self) -> PlanNode:
        """The single output node; raises if the plan has several."""
        sinks = self.sinks()
        if len(sinks) != 1:
            raise PlanError(
                f"plan has {len(sinks)} output nodes ({[s.name for s in sinks]}); "
                "use sinks() for multi-output plans"
            )
        return sinks[0]

    def validate(self) -> None:
        """Re-check global invariants (invariants are also enforced
        incrementally by :meth:`add`)."""
        if not self._nodes:
            raise PlanError("plan is empty")
        position = {name: i for i, name in enumerate(self._order)}
        for node in self.nodes():
            for input_name in node.inputs:
                if position[input_name] >= position[node.name]:
                    raise PlanError(
                        f"node {node.name!r} consumes {input_name!r} defined later"
                    )

    def topological_order(self) -> list[PlanNode]:
        """Dependency-respecting order (insertion order already is one,
        but this re-derives it defensively via Kahn's algorithm)."""
        in_degree = {name: len(node.inputs) for name, node in self._nodes.items()}
        consumers: dict[str, list[str]] = {name: [] for name in self._nodes}
        for node in self.nodes():
            for input_name in node.inputs:
                consumers[input_name].append(node.name)
        ready = [name for name in self._order if in_degree[name] == 0]
        ordered: list[str] = []
        while ready:
            name = ready.pop(0)
            ordered.append(name)
            for consumer in consumers[name]:
                in_degree[consumer] -= 1
                if in_degree[consumer] == 0:
                    ready.append(consumer)
        if len(ordered) != len(self._nodes):
            raise PlanError("plan contains a dependency cycle")
        return [self._nodes[name] for name in ordered]

    def __repr__(self) -> str:
        parts = []
        for node in self.nodes():
            operator = type(node.operator).__name__
            if node.inputs:
                parts.append(f"{node.name}={operator}{list(node.inputs)}")
            else:
                parts.append(f"{node.name}={operator}")
        return f"Plan({', '.join(parts)})"
