"""Semantic discovery extension (the paper's §X future work).

The paper closes: *"It would be interesting to extend our system to
enable the execution and optimization of these [semantic and fuzzy]
operators. This can include incorporation of high-dimensional embeddings
into our index structure. The use of in-DB embeddings would also enable
efficient vector indexing using methods like HNSW or IVFFlat."*

This module implements that extension end to end:

* the offline phase embeds every lake column (see
  :mod:`repro.baselines.embeddings` for the encoder substitution) and
  serialises the vectors into a database relation ``AllVectors(TableId,
  ColumnId, Dim, Weight)`` -- the "in-DB embeddings";
* an HNSW index over the same vectors provides the efficient
  vector-search path;
* :class:`SemanticSeeker` (kind ``SS``) plugs into the Plan/combiner
  algebra like any other seeker, so semantic and exact operators compose
  (e.g. ``Intersect(SS($q), SC($q))`` -- tables that match both
  semantically and syntactically).

Optimizer integration: the paper's related-work section notes that
reordering *approximate* operators is non-trivial because it can change
result sets. Accordingly, a SemanticSeeker honours rewrites by
**post-filtering** its ranked results (semantics preserved exactly)
instead of pre-restricting the vector search.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..baselines.embeddings import DEFAULT_DIMENSIONS, embed_column, embed_values
from ..baselines.hnsw import HnswIndex
from ..engine.database import Database
from ..errors import SeekerError
from ..lake.datalake import DataLake
from ..lake.table import Cell
from .results import SeekerPartials, ranked_partials
from .seekers import Rewrite, Seeker, SeekerContext

ALLVECTORS_SCHEMA = [
    ("TableId", "integer"),
    ("ColumnId", "integer"),
    ("Dim", "integer"),
    ("Weight", "float"),
]


class SemanticIndex:
    """Column embeddings, persisted in-DB, searchable via HNSW."""

    def __init__(
        self,
        lake: DataLake,
        dimensions: int = DEFAULT_DIMENSIONS,
        m: int = 8,
        ef_construction: int = 48,
        seed: int = 0,
    ) -> None:
        self.lake = lake
        self.dimensions = dimensions
        self._m = m
        self._ef_construction = ef_construction
        self._seed = seed
        self._hnsw = HnswIndex(dimensions, m=m, ef_construction=ef_construction, seed=seed)
        self._vectors: dict[tuple[int, int], np.ndarray] = {}
        for table_id, table in lake.items():
            for position in range(table.num_columns):
                vector = embed_column(table, position, dimensions)
                if not np.any(vector):
                    continue
                self._vectors[(table_id, position)] = vector
                self._hnsw.add((table_id, position), vector)

    @property
    def num_columns(self) -> int:
        return len(self._vectors)

    # -- lifecycle maintenance -----------------------------------------------------

    def add_table(self, table_id: int, table, db: Optional[Database] = None) -> None:
        """Embed one added (or replacement) table's columns and graft them
        into the vector index; with *db*, the new ``AllVectors`` rows are
        persisted alongside."""
        rows = []
        for position in range(table.num_columns):
            vector = embed_column(table, position, self.dimensions)
            if not np.any(vector):
                continue
            self._vectors[(table_id, position)] = vector
            self._hnsw.add((table_id, position), vector)
            if db is not None:
                for dim in np.nonzero(vector)[0]:
                    rows.append((table_id, position, int(dim), float(vector[dim])))
        if db is not None and db.has_table("AllVectors") and rows:
            db.insert("AllVectors", rows)

    def remove_table(self, table_id: int, db: Optional[Database] = None) -> None:
        """Drop one table's column vectors. The HNSW graph does not
        support deletion (links would dangle), so it is rebuilt from the
        surviving vectors -- still offline-phase work, and exactly what a
        fresh :meth:`load` of the maintained ``AllVectors`` relation
        would produce. With *db*, the persisted rows are deleted too."""
        stale = [key for key in self._vectors if key[0] == table_id]
        if stale:
            for key in stale:
                del self._vectors[key]
            self._hnsw = HnswIndex(
                self.dimensions,
                m=self._m,
                ef_construction=self._ef_construction,
                seed=self._seed,
            )
            for key, vector in self._vectors.items():
                self._hnsw.add(key, vector)
        if db is not None and db.has_table("AllVectors"):
            db.delete_rows("AllVectors", "TableId", [table_id])

    def replace_table(self, table_id: int, table, db: Optional[Database] = None) -> None:
        self.remove_table(table_id, db)
        self.add_table(table_id, table, db)

    def persist(self, db: Database, table_name: str = "AllVectors") -> int:
        """Serialise the embeddings into a database relation (sparse
        coordinate layout), enabling in-DB inspection and maintenance of
        the vector index alongside ``AllTables``. Returns rows written."""
        if not db.has_table(table_name):
            db.create_table(table_name, ALLVECTORS_SCHEMA)
        rows = []
        for (table_id, column_id), vector in self._vectors.items():
            for dim in np.nonzero(vector)[0]:
                rows.append((table_id, column_id, int(dim), float(vector[dim])))
        inserted = db.insert(table_name, rows)
        db.create_index(table_name, "TableId")
        return inserted

    def snapshot_meta(self) -> dict:
        """Construction parameters a snapshot manifest records so
        :meth:`load` rebuilds an identical vector index from the
        persisted ``AllVectors`` relation (the vectors themselves travel
        in-DB, like everything else)."""
        return {
            "dimensions": self.dimensions,
            "seed": self._seed,
            "m": self._m,
            "ef_construction": self._ef_construction,
        }

    @classmethod
    def load(
        cls, db: Database, lake: DataLake, table_name: str = "AllVectors",
        dimensions: int = DEFAULT_DIMENSIONS, seed: int = 0,
        m: Optional[int] = None, ef_construction: Optional[int] = None,
    ) -> "SemanticIndex":
        """Rebuild the in-memory HNSW from the persisted relation --
        the deployment path where vectors live in the database. Pass
        *m* / *ef_construction* (e.g. from :meth:`snapshot_meta`) to
        reconstruct with the exact graph parameters of the saved index;
        left ``None``, the HNSW defaults apply."""
        instance = cls.__new__(cls)
        instance.lake = lake
        instance.dimensions = dimensions
        instance._seed = seed
        graph_kwargs = {}
        if m is not None:
            graph_kwargs["m"] = m
        if ef_construction is not None:
            graph_kwargs["ef_construction"] = ef_construction
        instance._hnsw = HnswIndex(dimensions, seed=seed, **graph_kwargs)
        # Record the graph parameters actually used, so a lifecycle
        # rebuild (remove_table) reconstructs with identical settings.
        instance._m = instance._hnsw.m
        instance._ef_construction = instance._hnsw.ef_construction
        instance._vectors = {}
        result = db.execute(
            f"SELECT TableId, ColumnId, Dim, Weight FROM {table_name} "
            "ORDER BY TableId, ColumnId, Dim"
        )
        for table_id, column_id, dim, weight in result.rows:
            key = (table_id, column_id)
            vector = instance._vectors.get(key)
            if vector is None:
                vector = np.zeros(dimensions, dtype=np.float64)
                instance._vectors[key] = vector
            vector[dim] = weight
        for key, vector in instance._vectors.items():
            instance._hnsw.add(key, vector)
        return instance

    def search_columns(
        self,
        vector: np.ndarray,
        k: int,
        ef: Optional[int] = None,
        exact: bool = False,
    ) -> list[tuple[tuple[int, int], float]]:
        """Closest *k* columns as ``((table_id, column_id), similarity)``,
        best first. ``exact=True`` brute-forces every stored vector with
        the same cosine metric, ties broken on the (table, column) key --
        deterministic and graph-independent, which is what makes sharded
        semantic search byte-identical to a single process at any scale
        (the HNSW beam is only exhaustive on small indexes)."""
        if exact:
            scored = sorted(
                (HnswIndex._distance(vector, stored), key)
                for key, stored in self._vectors.items()
            )
            return [(key, 1.0 - distance) for distance, key in scored[:k]]
        # The beam must cover at least k candidates or the top-k result
        # silently truncates to the beam's survivors; clamp per query
        # rather than trusting the graph's default (the exact lane above
        # needs no clamp -- it scores every stored vector).
        if ef is not None and ef < k:
            ef = k
        return self._hnsw.search(vector, k=k, ef=ef)

    def storage_bytes(self) -> int:
        return (
            len(self._vectors) * self.dimensions * 8 + self._hnsw.storage_bytes()
        )


class SemanticSeeker(Seeker):
    """SS: top-k tables whose best column is semantically closest to the
    query column (embedding cosine similarity via HNSW).

    Scores are cosine similarities in [0, 1]-ish -- a different scale
    from overlap counts, which is fine for Counter/Intersect/Difference
    composition (they operate on table id sets) but means Union score
    sums mix units, exactly as when the paper unions heterogeneous
    seekers.
    """

    kind = "SS"

    def __init__(
        self,
        values: Iterable[Cell],
        k: int = 10,
        overfetch: int = 4,
        exact: bool = False,
    ) -> None:
        super().__init__(k)
        self.values = list(values)
        if not self.values:
            raise SeekerError("semantic seeker requires at least one value")
        if overfetch < 1:
            raise SeekerError("overfetch must be >= 1")
        self.overfetch = overfetch
        self.exact = exact

    def sql(self, rewrite: Optional[Rewrite] = None) -> str:
        raise SeekerError(
            "the semantic seeker runs on the vector index, not SQL; "
            "see SemanticIndex.persist for the in-DB representation"
        )

    def params(self, rewrite: Optional[Rewrite] = None) -> dict:
        return {}

    def partials(
        self, context: SeekerContext, rewrite: Optional[Rewrite] = None
    ) -> SeekerPartials:
        """Best-similarity-per-table rows, best-first, cut at *k* -- a
        ranked partial over this context's shard of the vector index.

        Sharded caveat: per-shard partials merge to the single-process
        ranking exactly when the column search is deterministic -- either
        ``exact=True`` (brute force, any scale) or an exhaustive beam
        (``ef`` at least the shard's column count -- always true at test
        scale). With a genuinely approximate beam, the merge is as
        approximate as the underlying HNSW itself.
        """
        context.ensure_fresh()
        semantic = getattr(context, "semantic", None)
        if semantic is None:
            raise SeekerError(
                "semantic index not built; call Blend.enable_semantic() first"
            )
        query_vector = embed_values(self.values, semantic.dimensions)
        if not np.any(query_vector):
            return ranked_partials([], self.k)
        # Over-fetch columns: several columns of one table may rank high,
        # and rewrite post-filters may drop tables.
        column_hits = semantic.search_columns(
            query_vector, k=self.k * self.overfetch * 2, exact=self.exact
        )
        best_per_table: dict[int, float] = {}
        for (table_id, _), similarity in column_hits:
            if similarity > best_per_table.get(table_id, float("-inf")):
                best_per_table[table_id] = similarity
        ranked = sorted(best_per_table.items(), key=lambda item: (-item[1], item[0]))

        if rewrite is not None:
            # Approximate operators honour rewrites by post-filtering, so
            # optimization never changes what a semantic seeker would
            # report for the surviving tables (see module docstring).
            allowed = set(rewrite.table_ids)
            if rewrite.mode == "intersect":
                ranked = [item for item in ranked if item[0] in allowed]
            elif rewrite.mode == "difference":
                ranked = [item for item in ranked if item[0] not in allowed]
            else:
                raise SeekerError(f"unknown rewrite mode: {rewrite.mode}")
        return ranked_partials(ranked[: self.k], self.k)

    def query_cardinality(self) -> int:
        return len(self.values)

    def query_columns(self) -> int:
        return 1

    def query_tokens(self) -> list[str]:
        from ..lake.table import normalize_cell

        return [t for t in (normalize_cell(v) for v in self.values) if t is not None]
