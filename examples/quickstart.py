"""Quickstart: index a small lake and run every seeker + a composed plan.

This walks through the paper's Fig. 1 scenario end to end:

    $ python examples/quickstart.py
"""

from repro import Blend, Combiners, DataLake, Plan, Seekers, Table


def build_fig1_lake() -> DataLake:
    """The paper's running example: department tables T1-T3."""
    lake = DataLake("fig1")
    lake.add(Table("T1_sizes", ["team", "size"], [
        ("Finance", 31), ("Marketing", 28), ("HR", 33), ("IT", 92), ("Sales", 80),
    ]))
    lake.add(Table("T2_leads_2022", ["lead", "year", "team"], [
        ("Tom Riddle", 2022, "IT"), ("Draco Malfoy", 2022, "Marketing"),
        ("Harry Potter", 2022, "Finance"), ("Cho Chang", 2022, "R&D"),
        ("Luna Lovegood", 2022, "Sales"), ("Firenze", 2022, "HR"),
    ]))
    lake.add(Table("T3_leads_2024", ["lead", "year", "team"], [
        ("Ronald Weasley", 2024, "IT"), ("Draco Malfoy", 2024, "Marketing"),
        ("Harry Potter", 2024, "Finance"), ("Cho Chang", 2024, "R&D"),
        ("Luna Lovegood", 2024, "Sales"), ("Firenze", 2024, "HR"),
    ]))
    return lake


def main() -> None:
    lake = build_fig1_lake()

    # Offline phase: build the unified AllTables index (one relation,
    # two in-database indexes) plus the optimizer's lake statistics.
    blend = Blend(lake, backend="column")
    report = blend.build_index()
    print(f"indexed {report.num_tables} tables -> {report.num_index_rows} index rows\n")

    def names(result):
        return [lake.name_of(t) for t in result.table_ids()]

    # Single-column join search (Listing 1).
    departments = ["HR", "Marketing", "Finance", "IT", "R&D", "Sales"]
    print("SC  join search on departments:", names(blend.join_search(departments, k=3)))

    # Keyword search: values may match anywhere in a table.
    print("KW  keyword search [2022, firenze]:", names(blend.keyword_search(["2022", "Firenze"], k=3)))

    # Multi-column join search (Listing 2): row-aligned tuples.
    print("MC  tables containing ('HR','Firenze') in one row:",
          names(blend.multi_column_join_search([("HR", "Firenze")], k=3)))

    # Correlation search (Listing 3): which table has a column
    # correlating with our target, joined on department names?
    result = blend.correlation_search(
        keys=["HR", "Marketing", "Finance", "IT", "Sales"],
        targets=[33, 28, 31, 92, 80],
        k=3, min_support=3,
    )
    print("C   correlation search:", names(result))

    # The paper's Example 1, as a composed plan: tables containing the
    # (department, head) examples and the department list, but NOT the
    # outdated ("IT", "Tom Riddle") projection.
    plan = Plan()
    plan.add("P_examples", Seekers.MC([("HR", "Firenze")]), k=10)
    plan.add("N_examples", Seekers.MC([("IT", "Tom Riddle")]), k=10)
    plan.add("exclude", Combiners.Difference(k=10), ["P_examples", "N_examples"])
    plan.add("dep", Seekers.SC(departments), k=10)
    plan.add("intersect", Combiners.Intersect(k=10), ["exclude", "dep"])

    run = blend.run(plan)
    print("\nfind_dep_heads plan (Fig. 2a):")
    print("  optimized execution order:", " -> ".join(run.order))
    print("  answer:", names(run.output), " (expected: T3, the up-to-date table)")


if __name__ == "__main__":
    main()
