"""Multicollinearity-aware feature discovery (paper §VIII-B4).

Enrich an ML dataset with new features that correlate with the prediction
target but NOT with features the dataset already has: one correlation
seeker for the target, one correlation seeker + Difference combiner per
existing feature (the multicollinearity filter), and an MC seeker for
joinability -- all in a single declarative plan.

    $ python examples/feature_discovery.py
"""

from repro import Blend
from repro.core.tasks import feature_discovery_plan
from repro.lake.generators import make_correlation_benchmark


def main() -> None:
    bench = make_correlation_benchmark(
        num_queries=2, num_entities=80, tables_per_query=6,
        rows_per_table=120, distractor_tables=20, seed=19, name="feat_demo",
    )
    blend = Blend(bench.lake, backend="column")
    blend.build_index()

    query = bench.queries[0]
    keys = list(query.keys)
    target = list(query.targets)
    # Joinability examples: (entity, measurement) pairs the user already
    # holds -- they appear row-aligned in joinable lake tables.
    sample_table = bench.lake.by_name("feat_demo_q0_t0")
    join_rows = [(row[0], row[1]) for row in sample_table.rows[:6]]

    # Case 1: the dataset's existing feature is unrelated noise -- the
    # multicollinearity filter should let target-correlated tables pass.
    import random

    rng = random.Random(3)
    independent_feature = [rng.gauss(0.0, 1.0) for _ in target]
    plan = feature_discovery_plan(join_rows, keys, target, [independent_feature], k=5)
    run = blend.run(plan)
    print("plan nodes:", " -> ".join(run.order))
    print("\n[independent existing feature] discovered feature tables:")
    for hit in run.output:
        print(f"  {bench.lake.name_of(hit.table_id)}  score={hit.score:.3f}")
    truth = bench.ground_truth(query, 5)
    agreement = len(set(run.output.table_ids()) & set(truth))
    print(f"  -> {agreement} of them in the exact-Pearson top-5")

    # Case 2: the existing feature is (almost) the target itself. Every
    # target-correlated table is now redundant -- the Difference combiner
    # must filter them all.
    near_copy = [t + 0.05 for t in target]
    plan = feature_discovery_plan(join_rows, keys, target, [near_copy], k=5)
    run = blend.run(plan)
    print("\n[near-copy existing feature] discovered feature tables:",
          run.output.table_ids() or "none -- all candidates were "
          "multicollinear with the existing feature, as they should be")


if __name__ == "__main__":
    main()
