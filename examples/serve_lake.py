"""Serve a lake over HTTP: concurrent clients, batching stats, hot-swap.

Starts a :class:`repro.serving.BlendServer` on an ephemeral port, fires
a burst of concurrent discovery queries at it (watch ``batch_size`` in
the responses: requests that arrived together were answered by ONE index
pass), prints the serving metrics, then hot-swaps in a grown lake under
load -- the generation ticks over with zero failed requests:

    $ python examples/serve_lake.py
"""

import json
import random
import threading
import urllib.request

from repro import Blend, DataLake, Table
from repro.serving import BlendServer

CITIES = ["berlin", "paris", "rome", "madrid", "lisbon", "vienna", "oslo", "cairo"]
COUNTRIES = [
    "germany", "france", "italy", "spain",
    "portugal", "austria", "norway", "egypt",
]


def build_lake(name: str, tables: int) -> DataLake:
    rng = random.Random(7)
    lake = DataLake(name)
    for t in range(tables):
        rows = []
        for _ in range(40):
            i = rng.randrange(len(CITIES))
            rows.append([CITIES[i], COUNTRIES[i], rng.randint(1, 99)])
        lake.add(Table(f"t{t}", ["city", "country", "metric"], rows))
    return lake


def post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, json.dumps(payload).encode(), {"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def get(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.load(response)


def main() -> None:
    blend = Blend(build_lake("served", tables=12), backend="column")
    blend.build_index()

    with BlendServer(blend, workers=2, max_batch=32).start() as server:
        print(f"serving on {server.url}  (generation {get(server.url + '/health')['generation']})\n")

        # A concurrent burst: same-modality requests landing inside one
        # admission window share a single index pass.
        queries = [
            {"modality": "sc", "values": random.Random(i).sample(CITIES, 3), "k": 5}
            for i in range(16)
        ] + [
            {"modality": "kw", "values": ["berlin", "egypt"], "k": 5},
            {"modality": "mc", "tuples": [["rome", "italy"], ["oslo", "norway"]], "k": 5},
        ]
        answers = [None] * len(queries)

        def client(i: int) -> None:
            answers[i] = post(server.url + "/query", queries[i])

        threads = [threading.Thread(target=client, args=(i,)) for i in range(len(queries))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        sizes = sorted({a["batch_size"] for a in answers}, reverse=True)
        print(f"burst of {len(queries)} concurrent queries answered; "
              f"batch sizes seen: {sizes}")
        top = answers[0]["results"][:3]
        print(f"first SC query top hits: {top}\n")

        # Hot-swap: index a grown lake beside the served one, then flip.
        # In-flight requests drain on the old generation; new arrivals
        # land on the new one. /swap does the same from a saved snapshot.
        grown = Blend(build_lake("served-v2", tables=16), backend="column")
        grown.build_index()
        report = server.swap(grown)
        print(f"hot-swapped generation {report['old_generation']} -> "
              f"{report['new_generation']} ({report['drained']} drained, "
              f"{report['seconds'] * 1000:.1f}ms)")
        after = post(server.url + "/query", queries[0])
        print(f"post-swap query served by generation {after['generation']}\n")

        stats = get(server.url + "/stats")
        latency = stats["latency_ms"]
        print("serving stats:")
        print(f"  completed: {stats['completed']}  coalesced: {stats['coalesced']}  "
              f"swaps: {stats['swaps']}")
        print(f"  queries/s: {stats['queries_per_sec']:.1f}  "
              f"p50: {latency['p50']:.2f}ms  p99: {latency['p99']:.2f}ms")
        print(f"  batch-size histogram: {stats['batch_size_histogram']}")
        print(f"  plan cache: {stats['plan_cache']}")


if __name__ == "__main__":
    main()
