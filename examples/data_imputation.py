"""Example-based data imputation (paper §VIII-B3, Fig. 4 sub-plan).

A user table maps keys to values, but most values are missing. The plan
finds lake tables that (a) contain the complete example rows row-aligned
(MC seeker) and (b) are joinable on the keys whose values are missing
(SC seeker); the Intersection yields tables that can fill the gaps via
the functional dependency key -> value.

    $ python examples/data_imputation.py
"""

from repro import Blend
from repro.core.tasks import imputation_plan
from repro.lake.generators import make_imputation_benchmark


def main() -> None:
    bench = make_imputation_benchmark(
        num_queries=2, num_keys=40, num_examples=5,
        complete_tables_per_query=3, partial_tables_per_query=2,
        distractor_tables=30, seed=7,
    )
    blend = Blend(bench.lake, backend="column")
    blend.build_index()

    query = bench.queries[0]
    print(f"examples (complete rows): {list(query.examples)[:3]} ...")
    print(f"missing values for {len(query.query_keys)} keys\n")

    plan = imputation_plan(list(query.examples), list(query.query_keys), k=10)
    run = blend.run(plan)
    print("optimized order:", " -> ".join(run.order), "(SC first, MC rewritten)")

    found = run.output.table_ids()
    truth = bench.ground_truth(query)
    print("\ndiscovered tables:")
    for table_id in found:
        marker = "  <- can impute everything" if table_id in truth else ""
        print(f"  {bench.lake.name_of(table_id)}{marker}")

    # Use the best table to actually impute the missing values.
    best = bench.lake.by_id(found[0])
    mapping = {}
    key_pos, value_pos = 0, 1
    for row in best.rows:
        mapping[str(row[key_pos]).lower()] = row[value_pos]
    imputed = [mapping.get(str(k).lower()) for k in query.query_keys]
    correct = sum(1 for got, want in zip(imputed, query.answers) if got == want)
    print(f"\nimputed {correct}/{len(query.answers)} missing values correctly "
          "from the top-ranked table")


if __name__ == "__main__":
    main()
