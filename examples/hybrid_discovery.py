"""Hybrid semantic+exact discovery end to end (ROADMAP item 2).

Builds a small lake with both overlap structure and morphological
vocabulary families, then walks the fusion tier: the unified
``Blend.discover()`` facade, a ``HybridSeeker`` driven directly and
through the grammar ("joinable on X AND semantically about Y"),
alpha steering, cost-model-calibrated lane weights, and the sharded
deployment whose fused answers are byte-identical to solo execution:

    $ python examples/hybrid_discovery.py
"""

import tempfile
from pathlib import Path

from repro import Blend, DataLake, HybridSeeker, Table, parse_plan
from repro.index import IndexConfig
from repro.serving import ShardCoordinator
from repro.snapshot import save_sharded


def build_lake() -> DataLake:
    lake = DataLake("hybrid_demo")
    lake.add(Table("eu_offices", ["city", "head"],
                   [("berlin", "customer_1"), ("hamburg", "customer_2"),
                    ("munich", "customer_3"), ("cologne", "customer_4")]))
    lake.add(Table("us_offices", ["city", "head"],
                   [("boston", "client_1"), ("chicago", "client_2"),
                    ("seattle", "client_3")]))
    lake.add(Table("eu_sales", ["city", "total"],
                   [("berlin", "900"), ("hamburg", "410"), ("lisbon", "77")]))
    lake.add(Table("crm_accounts", ["account"],
                   [("customer_5",), ("customer_6",), ("customer_7",)]))
    lake.add(Table("noise", ["n"], [("x1",), ("x2",), ("x3",)]))
    return lake


def main() -> None:
    # semantic=True folds AllVectors into the build contract: no separate
    # enable_semantic() call, and snapshots/shards carry the vectors.
    blend = Blend(build_lake(), backend="column",
                  index_config=IndexConfig(semantic=True, semantic_dimensions=32))
    blend.build_index()
    lake = blend.lake

    # 1. The unified facade: one call, any modality mix, typed result.
    cities = ["berlin", "hamburg", "munich"]
    res = blend.discover(cities, modalities=("join", "semantic"), k=3)
    print("discover(join+semantic):",
          [lake.name_of(t) for t in res.table_ids()])
    print("  per-modality:",
          {m: [lake.name_of(t) for t in r.table_ids()]
           for m, r in res.per_modality.items()})

    # 2. The HY seeker: joinable on the cities AND about customer ids.
    seeker = HybridSeeker(cities, about=["customer_8", "customer_9"], k=3,
                          alpha=0.5)
    fused = seeker.execute(blend.context())
    print("HY(alpha=0.5):", [lake.name_of(t) for t in fused.table_ids()],
          "(overlap + the customer_* vocabulary family)")

    # Alpha steers the blend; 0 and 1 are exactly the pure lanes.
    for alpha in (0.0, 1.0):
        pure = HybridSeeker(cities, about=["customer_8"], k=3, alpha=alpha)
        print(f"HY(alpha={alpha}):",
              [lake.name_of(t) for t in pure.execute(blend.context()).table_ids()])

    # Learned weights: the trained cost model prices each lane and the
    # fusion down-weights the expensive one.
    blend.train_optimizer(samples_per_type=3, seed=5)
    seeker.calibrate(blend.optimizer.cost_model, blend.stats)
    print("calibrated lane weights (exact, semantic):",
          tuple(round(w, 3) for w in seeker.weights))

    # 3. The same mixed predicate, in the grammar.
    plan = parse_plan(
        "Intersect(HY($cities, about=$topic, alpha=0.5), KW($words))",
        bindings={"cities": cities, "topic": ["customer_8"],
                  "words": ["berlin"]},
        k=3,
    )
    run = blend.run(plan)
    print("grammar HY∩KW:", [lake.name_of(t) for t in run.output.table_ids()])

    # 4. Sharded serving: fused answers byte-identical to solo.
    with tempfile.TemporaryDirectory() as tmp:
        save_sharded(blend, Path(tmp) / "shards", num_shards=2)
        with ShardCoordinator.load(Path(tmp) / "shards") as coordinator:
            sharded = coordinator.execute(seeker)
            solo = seeker.execute(blend.context())
            assert [(h.table_id, h.score) for h in sharded] == (
                [(h.table_id, h.score) for h in solo])
            print("2-shard fused ranking identical to solo:",
                  [lake.name_of(t) for t in sharded.table_ids()])


if __name__ == "__main__":
    main()
