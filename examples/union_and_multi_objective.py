"""Union search and the full multi-objective plan (paper §VII-A, Fig. 4).

Union search composes one SC seeker per query column with a Counter
combiner; the multi-objective plan (Listing 4) additionally bundles
keyword search, data imputation, and correlation discovery under a final
Union combiner.

    $ python examples/union_and_multi_objective.py
"""

from repro import Blend
from repro.core.system import multi_objective_plan, union_search_plan
from repro.lake.generators import make_union_benchmark


def main() -> None:
    bench = make_union_benchmark(
        num_seeds=5, partitions_per_seed=4, rows_per_seed=60,
        distractor_tables=25, seed=29,
    )
    blend = Blend(bench.lake, backend="column")
    blend.build_index()

    # --- Union search -----------------------------------------------------
    query_name = bench.queries[0]
    query_table = bench.lake.by_name(query_name)
    print(f"union search for {query_name!r} "
          f"({query_table.num_columns} columns, {query_table.num_rows} rows)")

    plan = union_search_plan(query_table, k=6, per_column_k=50)
    print("plan:", plan)
    result = blend.union_search(query_table, k=6, per_column_k=50)
    truth = bench.ground_truth(query_name)
    print("unionable tables found:")
    for hit in result:
        marker = "  <- same family (ground truth)" if hit.table_id in truth else ""
        print(f"  {bench.lake.name_of(hit.table_id)} "
              f"(matched on {hit.score:.0f} columns){marker}")

    # --- Multi-objective discovery (Listing 4) -----------------------------
    keywords = [query_table.rows[0][0], query_table.rows[1][0]]
    examples = query_table.head(20, name="mo_examples")
    numeric_columns = [
        column for column, is_num in zip(examples.columns, examples.numeric_columns())
        if is_num
    ]
    target_column = numeric_columns[0]
    join_key_column = examples.columns[0]

    plan = multi_objective_plan(
        keywords=keywords,
        examples=examples,
        join_key_column=join_key_column,
        target_column=target_column,
        queries=[row[0] for row in query_table.rows],
        k=5,
    )
    run = blend.run(plan)
    print(f"\nmulti-objective plan executed {len(run.order)} operators:")
    print("  " + " -> ".join(run.order))
    print("aggregated result (rows + columns + imputation + correlation):")
    for hit in run.output.top(8):
        print(f"  {bench.lake.name_of(hit.table_id)}  score={hit.score:.1f}")


if __name__ == "__main__":
    main()
