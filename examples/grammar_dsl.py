"""The discovery-language grammar of paper §IV-C as a textual DSL.

The same find_dep_heads task as examples/quickstart.py, written as one
grammar expression instead of imperative plan.add() calls:

    $ python examples/grammar_dsl.py
"""

from repro import Blend, parse_plan

from quickstart import build_fig1_lake


def main() -> None:
    lake = build_fig1_lake()
    blend = Blend(lake, backend="column")
    blend.build_index()

    # expression ::= seeker(Q) | combiner(expression(,expression)+)
    expression = "∩(\\(MC($pos), MC($neg)), SC($departments))"
    plan = parse_plan(
        expression,
        bindings={
            "pos": [("HR", "Firenze")],
            "neg": [("IT", "Tom Riddle")],
            "departments": ["HR", "Marketing", "Finance", "IT", "R&D", "Sales"],
        },
        k=10,
    )
    print("expression:", expression)
    print("parsed plan:", plan)

    run = blend.run(plan)
    print("optimized order:", " -> ".join(run.order))
    print("answer:", [lake.name_of(t) for t in run.output.table_ids()],
          "(T3 holds the up-to-date department heads)")


if __name__ == "__main__":
    main()
