"""Scale out a lake across shards: build, shard-save, scatter-gather.

Builds a lake, saves it as per-shard snapshots, spins up a
:class:`repro.serving.ShardCoordinator` over shard workers (each with
its own deployment manager and batching scheduler), and shows that the
scatter-gather answers are byte-identical to direct single-process
execution. Then exercises the distributed lifecycle: add a table (the
coordinator routes it to the least-loaded shard under a globally stable
id), and hot-swap ONE shard to a new snapshot without ever refusing a
query:

    $ python examples/sharded_lake.py
"""

import random
import tempfile
from pathlib import Path

from repro import Blend, DataLake, Seekers, Table
from repro.core.semantic import SemanticSeeker
from repro.serving import ShardCoordinator
from repro.snapshot import save_sharded

CITIES = ["berlin", "paris", "rome", "madrid", "lisbon", "vienna", "oslo", "cairo"]
COUNTRIES = [
    "germany", "france", "italy", "spain",
    "portugal", "austria", "norway", "egypt",
]


def make_table(rng: random.Random, name: str) -> Table:
    rows = []
    for _ in range(30):
        i = rng.randrange(len(CITIES))
        country = COUNTRIES[i] if rng.random() < 0.75 else rng.choice(COUNTRIES)
        rows.append([CITIES[i], country, rng.randint(1, 99)])
    return Table(name, ["city", "country", "metric"], rows)


def queries() -> list:
    return [
        Seekers.SC(["berlin", "paris", "oslo"], k=5),
        Seekers.KW(["germany", "cairo"], k=5),
        Seekers.MC([("berlin", "germany"), ("rome", "italy")], k=5),
        SemanticSeeker(["madrid", "lisbon"], k=4),
    ]


def main() -> None:
    rng = random.Random(17)
    lake = DataLake("cities")
    for t in range(12):
        lake.add(make_table(rng, f"t{t}"))
    blend = Blend(lake, backend="column")
    blend.build_index()
    blend.enable_semantic()

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        save_sharded(blend, root / "shards", num_shards=3)
        print("saved 3 shard snapshots:",
              sorted(p.name for p in (root / "shards").iterdir()))

        # processes=True would give each shard its own child process;
        # in-process workers keep the example quick and portable.
        coordinator = ShardCoordinator.load(root / "shards")
        context = blend.context()
        for seeker in queries():
            solo = seeker.execute(context)
            sharded = coordinator.execute(seeker)
            marker = "==" if list(sharded) == list(solo) else "!!"
            print(f"  {seeker.kind:>2}: scatter-gather {marker} single-process "
                  f"-> {sharded.table_ids()}")

        # Lifecycle: the coordinator allocates the global id and routes
        # the table to the least-loaded shard.
        fresh = make_table(rng, "fresh")
        table_id = coordinator.add_table(fresh)
        blend.add_table(fresh)  # keep the oracle in step
        print(f"added table -> global id {table_id} "
              f"on shard {coordinator.table_shard(table_id)}, "
              f"generation {coordinator.generation}")
        seeker = Seekers.SC(["berlin", "paris", "oslo"], k=5)
        assert list(coordinator.execute(seeker)) == list(seeker.execute(blend.context()))

        # Hot-swap ONE shard: rebuild its tables (one replaced) as a new
        # snapshot, swap it in; the other shards never notice.
        shard = 0
        shard_ids = [t for t in coordinator.table_ids()
                     if coordinator.table_shard(t) == shard]
        victim = shard_ids[0]
        replacement = make_table(rng, "replacement")
        tables = dict(blend.lake.items())
        shard_lake = DataLake("cities/shard0v2")
        for tid in shard_ids:
            shard_lake.add_at(tid, replacement if tid == victim else tables[tid])
        sub = Blend(shard_lake, backend="column")
        sub.build_index()
        sub.enable_semantic()
        sub.save(root / "shard0v2")

        coordinator.swap_shard(shard, root / "shard0v2")
        blend.replace_table(victim, replacement)  # oracle applies the same change
        print(f"hot-swapped shard {shard} (table {victim} replaced), "
              f"generation {coordinator.generation}")
        for seeker in queries():
            assert list(coordinator.execute(seeker)) == \
                list(seeker.execute(blend.context()))
        print("post-swap answers still byte-identical to single-process")
        coordinator.close()


if __name__ == "__main__":
    main()
